package coordnet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/harness"
	"dpmr/internal/journal"
)

// chaosSeverDelay is how long after a chaos-targeted worker's checkout
// its socket is severed: long enough for the assignment to reach the
// worker, short enough to land mid-shard — the same knife timing as the
// coordinator's process-kill drill.
const chaosSeverDelay = 25 * time.Millisecond

// fleetWorker is what the daemon's pool holds: a coord.Worker the
// keepalive sweep can health-check, remote (a joined socket) or local
// (an in-process goroutine with its own warm Runner).
type fleetWorker interface {
	coord.Worker
	ping(timeout time.Duration) error
	remote() bool
}

// localWorker is an in-process fleet slot: a persistent harness.Runner
// executing shard assignments directly, so module and program caches
// stay warm across assignments exactly like a -coord-spawn worker
// process. The pool checks a worker out per shard, so Run is serial.
type localWorker struct {
	opts harness.Options
}

func newLocalWorker(opts harness.Options) *localWorker {
	opts.Runner = harness.NewRunner()
	return &localWorker{opts: opts}
}

func (w *localWorker) Run(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
	payload, err := harness.ShardPayload(ctx, spec, shard, w.opts)
	if err != nil {
		// A local execution failure is in-band: the worker is healthy, the
		// shard (or Spec) is the problem. Transport errors don't exist here.
		return nil, &coord.ShardError{Shard: shard, Msg: err.Error()}
	}
	return payload, nil
}

func (w *localWorker) Close() error             { return nil }
func (w *localWorker) ping(time.Duration) error { return nil }
func (w *localWorker) remote() bool             { return false }
func (w *RemoteWorker) remote() bool            { return true }

// pool is the daemon's shared worker fleet: a FIFO of idle workers that
// submissions check out one shard at a time. Checkout granularity is the
// fairness mechanism — with several campaigns multiplexed, each finished
// shard returns its worker to the queue and the next checkout may serve
// a different client, so no submission can monopolize the fleet.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	idle   []fleetWorker
	total  int // idle + checked out
	closed bool
}

func newPool() *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// add hands a worker to the pool (a joined remote, or a local slot).
func (p *pool) add(w fleetWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		_ = w.Close()
		return
	}
	p.idle = append(p.idle, w)
	p.total++
	p.cond.Broadcast()
}

// get checks out the next idle worker, blocking until one frees up, the
// pool closes, or ctx ends. A worker joining mid-wait satisfies an
// already-blocked submission.
func (p *pool) get(ctx context.Context) (fleetWorker, error) {
	// Wake the wait loop when ctx ends; cond has no native ctx support.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.idle) == 0 && !p.closed && ctx.Err() == nil {
		p.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(p.idle) == 0 {
		return nil, errors.New("coordnet: worker pool closed")
	}
	w := p.idle[0]
	p.idle = p.idle[1:]
	return w, nil
}

// put returns a healthy worker after its shard.
func (p *pool) put(w fleetWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		_ = w.Close()
		p.total--
		return
	}
	p.idle = append(p.idle, w)
	p.cond.Broadcast()
}

// discard drops a dead worker (severed socket, failed ping).
func (p *pool) discard(w fleetWorker) {
	_ = w.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total--
}

// size reports the fleet size, checked-out workers included.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// takeIdleRemotes removes and returns every idle remote worker — the
// keepalive sweep's snapshot. Local workers have nothing to health-check
// and stay put.
func (p *pool) takeIdleRemotes() []fleetWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	var remotes []fleetWorker
	keep := p.idle[:0]
	for _, w := range p.idle {
		if w.remote() {
			remotes = append(remotes, w)
		} else {
			keep = append(keep, w)
		}
	}
	p.idle = keep
	return remotes
}

// close drains the pool: idle workers are closed now (a remote worker's
// JoinFleet loop sees the close as an orderly EOF), checked-out workers
// are closed as their shards return.
func (p *pool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.total -= len(idle)
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, w := range idle {
		_ = w.Close()
	}
}

// ServerConfig parameterizes the dpmrd campaign service.
type ServerConfig struct {
	// LocalWorkers is how many in-process worker slots the daemon itself
	// contributes to the fleet, each with a persistent Runner. 0 means
	// the fleet is remote joiners only.
	LocalWorkers int
	// WorkerOptions is the execution policy (parallelism, compilation,
	// eviction, prefetch) for the daemon's local workers.
	WorkerOptions harness.Options
	// JournalRoot, when set, journals every campaign-kind submission
	// under JournalRoot/<spec fingerprint prefix>/ — a client that
	// disconnects mid-campaign and resubmits the identical Spec resumes
	// from the journaled spans instead of starting over.
	JournalRoot string
	// Lease bounds one shard assignment (see coord.Config.Lease); it is
	// also what unsticks a submission whose whole fleet died — every
	// attempt expires, MaxAttempts exhausts, and the submission fails by
	// name instead of hanging. 0 means a 5-minute default; there is
	// deliberately no way to disable it on the network path.
	Lease time.Duration
	// Keepalive, when positive, pings idle remote workers at this
	// interval and drops the unresponsive, so a silently dead socket is
	// discovered before a shard is wasted on it.
	Keepalive time.Duration
	// KeepaliveTimeout bounds how long the sweep waits for a pong
	// before declaring a worker dead. 0 defaults to the Keepalive
	// interval — the old coupled behavior — while a separate value lets
	// a tight sweep cadence tolerate slow-but-alive workers (or, set
	// short, catch blackholed sockets fast).
	KeepaliveTimeout time.Duration
	// Chaos severs this many remote worker sockets mid-shard — the
	// transport-level fault drill. Severed workers are expected to
	// reconnect (dpmrd -connect redials); the interrupted shards ride
	// the ordinary lease/retry path.
	Chaos int
	// Log, when non-nil, receives daemon diagnostics. Calls are
	// serialized.
	Log func(format string, args ...any)
}

// Server is the dpmrd campaign service: one listener, a shared worker
// pool, many concurrent client submissions.
type Server struct {
	cfg   ServerConfig
	pool  *pool
	chaos int64

	// fleetHealth scores the remote fleet as a whole: worker sockets
	// dying mid-shard drive it down, completed remote shards drive it
	// up. Below threshold, rejoining workers are admitted with a
	// backoff instead of instantly — a fleet flapping against a
	// persistent fault (bad build, poisoned spec, dying host) must not
	// churn join/sever/join at socket speed.
	fleetHealth *coord.Breaker

	logMu sync.Mutex

	claimMu sync.Mutex
	claims  map[string]bool // journal dirs in use, by spec fingerprint

	conns sync.WaitGroup
}

// NewServer builds the service and seeds its pool with the configured
// local workers.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Lease <= 0 {
		cfg.Lease = 5 * time.Minute
	}
	if cfg.KeepaliveTimeout <= 0 {
		cfg.KeepaliveTimeout = cfg.Keepalive
	}
	s := &Server{
		cfg:         cfg,
		pool:        newPool(),
		chaos:       int64(cfg.Chaos),
		fleetHealth: coord.NewBreaker(coord.DefaultQuarantine),
		claims:      make(map[string]bool),
	}
	for i := 0; i < cfg.LocalWorkers; i++ {
		s.pool.add(newLocalWorker(cfg.WorkerOptions))
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.cfg.Log(format, args...)
}

// FleetSize reports the current worker count (local + joined remotes).
func (s *Server) FleetSize() int { return s.pool.size() }

// Serve accepts worker joins and client submissions on ln until ctx is
// cancelled, then drains: the listener closes immediately, in-flight
// submissions run to completion (only their own client's disconnect
// cancels them), and the fleet's connections are closed last so remote
// workers exit cleanly.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stopClose := context.AfterFunc(ctx, func() { _ = ln.Close() })
	defer stopClose()

	sweepDone := make(chan struct{})
	sweepExit := make(chan struct{})
	if s.cfg.Keepalive > 0 {
		go func() {
			defer close(sweepExit)
			t := time.NewTicker(s.cfg.Keepalive)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.sweep()
				case <-sweepDone:
					return
				}
			}
		}()
	} else {
		close(sweepExit)
	}

	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				acceptErr = fmt.Errorf("coordnet: accept: %w", err)
			}
			break
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.handle(ctx, conn)
		}()
	}

	s.conns.Wait()
	close(sweepDone)
	<-sweepExit
	s.pool.close()
	return acceptErr
}

// sweep pings every idle remote worker and drops the unresponsive.
func (s *Server) sweep() {
	for _, w := range s.pool.takeIdleRemotes() {
		if err := w.ping(s.cfg.KeepaliveTimeout); err != nil {
			s.logf("dpmrd: keepalive dropped a worker: %v", err)
			s.pool.discard(w)
			continue
		}
		s.pool.put(w)
	}
}

// handle runs one accepted connection: handshake, then route by role. A
// worker connection is handed to the pool (and lives past this call); a
// client connection is served to completion here.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	role, err := listenerHandshake(conn)
	if err != nil {
		s.logf("dpmrd: %v", err)
		_ = conn.Close()
		return
	}
	switch role {
	case roleWorker:
		w := newRemoteWorker(conn)
		// A flapping fleet rejoins through the breaker: the worker is
		// admitted, but only after the fleet's quarantine backoff, so a
		// persistent fault cannot churn join/sever/join at socket speed.
		if d := s.fleetHealth.Backoff(); d > 0 {
			s.logf("dpmrd: fleet flapping (health %.2f): quarantining join from %s for %v",
				s.fleetHealth.Score(), w.Addr(), d.Round(time.Millisecond))
			time.AfterFunc(d, func() { s.pool.add(w) })
			return
		}
		s.logf("dpmrd: worker joined from %s", w.Addr())
		s.pool.add(w)
	case roleClient:
		defer conn.Close()
		s.serveClient(conn)
	}
}

// serveClient runs one submission: read the Spec, execute it against the
// shared fleet, stream shard events back, finish with the result frame.
// The submission's context is independent of the serve context — a
// draining daemon finishes accepted work — and is cancelled the moment
// the client's connection drops, releasing its workers mid-campaign
// (the journal, when configured, preserves completed spans for resume).
func (s *Server) serveClient(conn net.Conn) {
	if err := conn.SetReadDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return
	}
	var req submitRequest
	if err := readFrame(conn, &req); err != nil {
		s.logf("dpmrd: reading submission from %s: %v", conn.RemoteAddr(), err)
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Disconnect watchdog: the protocol has no further client frames, so
	// any read activity — data or error — means the client is gone.
	go func() {
		var buf [1]byte
		_, _ = conn.Read(buf[:])
		cancel()
	}()

	// Event writes and the final result frame are sequential (events come
	// from the coordinator's single scheduling loop, the result after it
	// returns), so the connection has one writer. A write failure means
	// the client is gone; the watchdog cancels, no need to act here.
	emit := func(ev harness.Event) {
		data, err := harness.EncodeEvent(ev)
		if err != nil {
			return
		}
		_ = writeFrame(conn, serverFrame{Event: data})
	}

	spec, err := req.Spec.Normalized()
	result := &submitResult{}
	if err == nil {
		var fp string
		if fp, err = spec.Fingerprint(); err == nil {
			s.logf("dpmrd: %s: submitted spec %.12s (%s %s)", conn.RemoteAddr(), fp, spec.Kind, spec.Exp)
			result.Payloads, err = s.execute(ctx, spec, fp, emit)
		}
	}
	if err != nil {
		s.logf("dpmrd: %s: submission failed: %v", conn.RemoteAddr(), err)
		result.Error = err.Error()
		result.Payloads = nil
	}
	if err := writeFrame(conn, serverFrame{Done: result}); err != nil {
		s.logf("dpmrd: %s: delivering result: %v", conn.RemoteAddr(), err)
	}
}

// spawnProxy is the coordinator's worker factory: every fleet slot is a
// proxy that checks a physical worker out of the shared pool per shard.
func (s *Server) spawnProxy(int) (coord.Worker, error) {
	return &poolProxy{s: s}, nil
}

// execute schedules one normalized Spec onto the fleet and returns its
// shard payloads in ascending trial order.
func (s *Server) execute(ctx context.Context, spec harness.Spec, fp string, emit func(harness.Event)) ([][]byte, error) {
	workers := s.pool.size()
	if workers < 1 {
		// No fleet yet: run one proxy slot anyway — it blocks in checkout
		// until a worker joins, bounded by the lease/attempt limits.
		workers = 1
	}
	if spec.Kind == harness.SpecCampaign && s.cfg.JournalRoot != "" {
		if s.claimJournal(fp) {
			defer s.releaseJournal(fp)
			return s.executeJournaled(ctx, spec, fp, workers, emit)
		}
		// The same Spec is already running journaled (a concurrent
		// duplicate submission); run this one plain rather than fight
		// over the journal file.
		s.logf("dpmrd: spec %.12s already journaling, running duplicate unjournaled", fp)
	}
	shards := 2 * workers
	co, err := coord.New(coord.Config{
		Spec:    spec,
		Shards:  shards,
		Workers: workers,
		Lease:   s.cfg.Lease,
		Spawn:   s.spawnProxy,
		OnResult: func(shard int, payload []byte) error {
			emit(shardMergedEvent(payload, harness.ShardSpec{Index: shard, Count: shards}))
			return nil
		},
		Log: s.logf,
	})
	if err != nil {
		return nil, err
	}
	return co.Run(ctx)
}

func (s *Server) claimJournal(fp string) bool {
	s.claimMu.Lock()
	defer s.claimMu.Unlock()
	if s.claims[fp] {
		return false
	}
	s.claims[fp] = true
	return true
}

func (s *Server) releaseJournal(fp string) {
	s.claimMu.Lock()
	defer s.claimMu.Unlock()
	delete(s.claims, fp)
}

// executeJournaled runs a campaign Spec through its per-fingerprint
// journal dir: spans already journaled (by an earlier submission the
// client abandoned) replay instead of re-running, the remaining gaps are
// leased to the fleet as explicit spans, and every first-completed span
// is made durable before the coordinator moves past it. The final
// payload set tiles the full plan, so the client-side fingerprint merge
// validates it exactly like any sharded run.
func (s *Server) executeJournaled(ctx context.Context, spec harness.Spec, fp string, workers int, emit func(harness.Event)) ([][]byte, error) {
	dir := filepath.Join(s.cfg.JournalRoot, fp[:16])
	resume := false
	if _, err := os.Stat(filepath.Join(dir, journal.FileName)); err == nil {
		resume = true
	}
	j, rp, err := harness.OpenJournal(dir, resume, spec)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = j.Close()
		// A journal that degraded mid-campaign (disk full, fsync
		// failure) did not stop the run — results stream to the client
		// regardless — but the lossy state must be named: the next
		// submission of this Spec cannot resume from it.
		if derr := j.Degraded(); derr != nil {
			s.logf("dpmrd: spec %.12s: journal degraded, campaign completed but cannot be resumed: %v", fp, derr)
		}
	}()

	cr, err := harness.NewRunner().ResumeCampaign(spec, rp)
	if err != nil {
		return nil, err
	}

	type loPayload struct {
		lo      int
		payload []byte
	}
	var out []loPayload
	for _, p := range cr.Parts {
		payload, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("coordnet: re-encoding journaled partial: %w", err)
		}
		out = append(out, loPayload{p.Lo, payload})
		emit(harness.ShardMerged{Shard: harness.SpanShard(p.Lo, p.Hi), Lo: p.Lo, Hi: p.Hi, Total: p.Total,
			Elapsed: time.Duration(p.ElapsedMS) * time.Millisecond})
	}
	if resume && len(cr.Parts) > 0 {
		s.logf("dpmrd: spec %.12s resumes with %d of %d trials journaled", fp, cr.Done(), cr.Total)
	}

	spans := cr.Spans(2 * workers)
	if len(spans) > 0 {
		co, err := coord.New(coord.Config{
			Spec:    spec,
			Spans:   spans,
			Workers: workers,
			Lease:   s.cfg.Lease,
			Spawn:   s.spawnProxy,
			OnResult: func(shard int, payload []byte) error {
				if _, err := harness.AppendCampaignPayload(j, payload); err != nil {
					return err
				}
				emit(shardMergedEvent(payload, spans[shard]))
				return nil
			},
			Log: s.logf,
		})
		if err != nil {
			return nil, err
		}
		payloads, err := co.Run(ctx)
		if err != nil {
			return nil, err
		}
		for i, payload := range payloads {
			out = append(out, loPayload{spans[i].Lo, payload})
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].lo < out[k].lo })
	result := make([][]byte, len(out))
	for i, lp := range out {
		result[i] = lp.payload
	}
	return result, nil
}

// shardMergedEvent builds the client-facing shard event from a payload's
// envelope. The decode is deliberately lenient: campaign and overhead
// partials carry lo/hi/total at the top level, experiment partials don't
// — their event still marks the shard done, just without a trial range.
func shardMergedEvent(payload []byte, shard harness.ShardSpec) harness.Event {
	type span struct {
		Lo        int   `json:"lo"`
		Hi        int   `json:"hi"`
		Total     int   `json:"total"`
		ElapsedMS int64 `json:"elapsedMS"`
	}
	var env struct {
		span
		// Experiment payloads nest one campaign partial per constituent
		// campaign; their summed spans stand in for the whole shard.
		Campaigns []span `json:"campaigns"`
	}
	_ = json.Unmarshal(payload, &env)
	if env.Total == 0 {
		for _, c := range env.Campaigns {
			env.Lo += c.Lo
			env.Hi += c.Hi
			env.Total += c.Total
			env.ElapsedMS += c.ElapsedMS
		}
	}
	return harness.ShardMerged{Shard: shard, Lo: env.Lo, Hi: env.Hi, Total: env.Total,
		Elapsed: time.Duration(env.ElapsedMS) * time.Millisecond}
}

// poolProxy is one coordinator fleet slot: each Run checks a physical
// worker out of the shared pool, runs the shard, and returns the worker
// — shard-granular interleaving across every concurrent submission. A
// transport failure discards the physical worker (a reconnecting joiner
// replaces it); an in-band ShardError returns it warm.
type poolProxy struct {
	s *Server
}

func (p *poolProxy) Run(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
	w, err := p.s.pool.get(ctx)
	if err != nil {
		return nil, err
	}
	if w.remote() && atomic.AddInt64(&p.s.chaos, -1) >= 0 {
		p.s.logf("dpmrd: chaos sever armed on a worker socket")
		time.AfterFunc(chaosSeverDelay, func() { _ = w.Close() })
	}
	payload, err := w.Run(ctx, spec, shard)
	if err != nil {
		var inBand *coord.ShardError
		if errors.As(err, &inBand) {
			p.s.pool.put(w)
		} else {
			// A transport death scores against the fleet's health; the
			// breaker throttles rejoins once deaths outpace completions.
			if w.remote() && ctx.Err() == nil {
				p.s.fleetHealth.Fail()
			}
			p.s.pool.discard(w)
		}
		return nil, err
	}
	if w.remote() {
		p.s.fleetHealth.OK()
	}
	p.s.pool.put(w)
	return payload, nil
}

// Close implements coord.Worker; the proxy owns nothing between shards.
func (p *poolProxy) Close() error { return nil }

// workerPayloadRunner is the shard executor a fleet-joining worker
// process uses: a persistent Runner with the process's execution policy,
// shared across every assignment the daemon sends.
func workerPayloadRunner(opts harness.Options) func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
	opts.Runner = harness.NewRunner()
	return func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
		return harness.ShardPayload(ctx, spec, shard, opts)
	}
}

// WorkerLoop joins the daemon's fleet at addr and serves assignments
// until ctx ends, reconnecting with backoff when the socket drops (a
// chaos sever, a daemon restart mid-lease). The first connection must
// succeed — a bad address or version mismatch is a named setup error,
// not a drop to ride out — while a failed *re*join after having served
// means the daemon is gone for good (drained), which is an orderly
// exit. onJoin, when non-nil, observes each successful (re)join.
func WorkerLoop(ctx context.Context, addr string, opts harness.Options, onJoin func(rejoin bool)) error {
	run := workerPayloadRunner(opts)
	joined := false
	backoff := 100 * time.Millisecond
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		conn, err := dialFleet(ctx, addr)
		if err != nil {
			if !joined {
				return err
			}
			return nil
		}
		if onJoin != nil {
			onJoin(joined)
		}
		joined = true
		_ = serveFleetConn(ctx, conn, addr, run)
		if ctx.Err() != nil {
			return nil
		}
		// Severed mid-fleet: back off briefly, then rejoin. The delay is
		// jittered in [backoff/2, backoff] — when a daemon restart severs a
		// whole fleet at once, its workers must not redial in lockstep.
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}
