package coordnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/failpt"
	"dpmr/internal/harness"
)

// net/keepalive blackholes a worker's pong: the ping arrives and is
// swallowed, so the daemon's sweep sees a silent socket and must drop
// the worker within its keepalive timeout — the detection path a
// half-dead connection (live TCP, wedged process) exercises.
var siteKeepalive = failpt.Register("net/keepalive", failpt.KindDrop)

// RemoteWorker is the daemon's handle on one connected worker process:
// a coord.Worker whose Run ships the assignment over the socket and
// waits for the completion. The connection carries one assignment at a
// time (the pool checks a worker out per shard), so replies arrive in
// request order; stray pongs from an earlier keepalive are skipped.
type RemoteWorker struct {
	conn net.Conn
	addr string

	mu     sync.Mutex
	closed bool

	// replies is fed by a single reader goroutine started on first use,
	// so Run can select between the completion and ctx cancellation.
	readOnce sync.Once
	replies  chan readResult
}

type readResult struct {
	reply workerReply
	err   error
}

// newRemoteWorker wraps a connection that completed a worker handshake.
func newRemoteWorker(conn net.Conn) *RemoteWorker {
	return &RemoteWorker{
		conn:    conn,
		addr:    conn.RemoteAddr().String(),
		replies: make(chan readResult, 4),
	}
}

// Addr names the worker's remote endpoint, for logs.
func (w *RemoteWorker) Addr() string { return w.addr }

func (w *RemoteWorker) startReader() {
	w.readOnce.Do(func() {
		go func() {
			for {
				var reply workerReply
				err := readFrame(w.conn, &reply)
				w.replies <- readResult{reply, err}
				if err != nil {
					close(w.replies)
					return
				}
			}
		}()
	})
}

// Run ships one shard assignment and waits for its completion. A
// completion carrying an in-band error surfaces as *coord.ShardError —
// the worker stays healthy and returns to the pool. Any transport
// failure (severed socket, truncated frame, ctx cancellation) is a
// plain error: the coordinator closes this worker and re-leases the
// shard elsewhere, exactly as if a spawned process had died.
func (w *RemoteWorker) Run(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
	w.startReader()
	if err := writeFrame(w.conn, workerFrame{Assign: &coord.Assignment{Spec: spec, Shard: shard}}); err != nil {
		return nil, fmt.Errorf("coordnet: assigning shard to %s: %w", w.addr, err)
	}
	for {
		select {
		case <-ctx.Done():
			// Unblock the reader: the connection is no longer usable once
			// an assignment is abandoned mid-flight.
			w.Close()
			return nil, ctx.Err()
		case res, ok := <-w.replies:
			if !ok {
				return nil, fmt.Errorf("coordnet: worker %s: connection closed", w.addr)
			}
			if res.err != nil {
				return nil, fmt.Errorf("coordnet: worker %s: %w", w.addr, res.err)
			}
			if res.reply.Pong {
				// A keepalive answered after its deadline; the completion
				// is still in flight.
				continue
			}
			c := res.reply.Completion
			if c == nil {
				return nil, fmt.Errorf("coordnet: worker %s: frame with neither pong nor completion", w.addr)
			}
			if c.Shard != shard {
				return nil, fmt.Errorf("coordnet: worker %s answered shard %s, was leased %s", w.addr, c.Shard, shard)
			}
			if c.Error != "" {
				return nil, &coord.ShardError{Shard: shard, Msg: c.Error}
			}
			return c.Payload, nil
		}
	}
}

// ping verifies the worker is alive: one ping frame, one pong within
// timeout. Used by the daemon's keepalive sweep on idle workers only, so
// a pong is the sole frame in flight.
func (w *RemoteWorker) ping(timeout time.Duration) error {
	w.startReader()
	if err := writeFrame(w.conn, workerFrame{Ping: true}); err != nil {
		return fmt.Errorf("coordnet: pinging %s: %w", w.addr, err)
	}
	select {
	case res, ok := <-w.replies:
		if !ok {
			return fmt.Errorf("coordnet: worker %s: connection closed", w.addr)
		}
		if res.err != nil {
			return fmt.Errorf("coordnet: worker %s: %w", w.addr, res.err)
		}
		if !res.reply.Pong {
			return fmt.Errorf("coordnet: worker %s: expected pong, got another frame", w.addr)
		}
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("coordnet: worker %s: no pong within %v", w.addr, timeout)
	}
}

// Close severs the connection. Idempotent; also the chaos drill's knife.
func (w *RemoteWorker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.conn.Close()
}

// JoinFleet dials a dpmrd daemon at addr and serves shard assignments
// with run until ctx is cancelled or the daemon closes the connection
// (both return nil — an orderly exit). run is typically a closure over a
// persistent harness.Runner, so module and program caches stay warm
// across assignments, which is the entire point of a standing fleet.
func JoinFleet(ctx context.Context, addr string, run func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error)) error {
	conn, err := dialFleet(ctx, addr)
	if err != nil {
		return err
	}
	return serveFleetConn(ctx, conn, addr, run)
}

// dialFleet connects and completes the worker handshake.
func dialFleet(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	if err := dialerHandshake(conn, roleWorker); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// serveFleetConn serves assignments on an established, handshaken fleet
// connection until it drops or ctx ends.
func serveFleetConn(ctx context.Context, conn net.Conn, addr string, run func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error)) error {
	defer conn.Close()
	// Cancellation severs the connection, unblocking the read below. The
	// daemon sees an expired lease and re-assigns; our journal-free exit
	// is safe because shard results are pure.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	for {
		var frame workerFrame
		if err := readFrame(conn, &frame); err != nil {
			if ctx.Err() != nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("coordnet: fleet connection to %s: %w", addr, err)
		}
		switch {
		case frame.Ping:
			if act := failpt.Eval(siteKeepalive); act != nil && act.Kind == failpt.KindDrop {
				continue // blackhole: swallow the ping, send no pong
			}
			if err := writeFrame(conn, workerReply{Pong: true}); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("coordnet: answering keepalive from %s: %w", addr, err)
			}
		case frame.Assign != nil:
			a := frame.Assign
			payload, err := run(ctx, a.Spec, a.Shard)
			c := coord.Completion{Shard: a.Shard}
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				c.Error = err.Error()
			} else {
				c.Payload = payload
			}
			if err := writeFrame(conn, workerReply{Completion: &c}); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("coordnet: reporting shard %d to %s: %w", a.Shard.Index, addr, err)
			}
		default:
			return fmt.Errorf("coordnet: fleet connection to %s: frame with neither ping nor assignment", addr)
		}
	}
}
