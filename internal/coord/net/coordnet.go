// Package coordnet promotes the coordinator's JSON Assignment/Completion
// protocol from stdio pipes to a network transport: a campaign service
// (Server, the dpmrd daemon) that schedules Specs submitted by many
// concurrent clients onto a persistent fleet of remote and in-process
// workers.
//
// The wire format is deliberately thin: every message is one
// length-delimited frame — a 4-byte big-endian byte count followed by
// exactly that many bytes of JSON — and the JSON inside reuses the
// existing protocol types (coord.Assignment, coord.Completion,
// harness.Spec, the Session event wire form) unchanged. A connection
// opens with a versioned hello naming the protocol and Spec-schema
// versions plus the peer's role (worker or client); any mismatch is
// refused by name before the first assignment, never negotiated around.
//
// Faults are the coordinator's existing vocabulary: a severed worker
// socket surfaces as a failed attempt, so the shard is re-leased exactly
// as if a spawned worker process had died — and because every shard of a
// plan is a pure function of its range, the re-delivered result merges
// byte-identically under the downstream fingerprint + exact-tiling
// validation. Nothing about correctness lives in the transport.
package coordnet

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"

	"dpmr/internal/failpt"
)

// Failpoint sites on the framing layer, where every byte of the
// protocol passes: net/frame-write severs the connection before (or,
// torn, partway through) a frame goes out; net/frame-read severs it
// before a frame is read. Both misbehaviors surface to the peers as
// the transport failures they already know how to survive — re-leased
// shards, redialed fleets, refused submissions — which is exactly the
// claim the torture drill checks.
var (
	siteFrameWrite = failpt.Register("net/frame-write", failpt.KindSever, failpt.KindTorn)
	siteFrameRead  = failpt.Register("net/frame-read", failpt.KindSever)
)

// sever closes the underlying connection when the stream has one — the
// injected cut must look like a real dead socket to both ends, not a
// polite error on one.
func sever(stream any) {
	if c, ok := stream.(io.Closer); ok {
		_ = c.Close()
	}
}

// Protocol identity, checked by the hello handshake before any
// assignment or submission flows.
const (
	// ProtoVersion is the framing + message-schema version of this
	// package. Bump it when the wire format changes incompatibly.
	ProtoVersion = 1
	// SpecSchemaVersion names the harness.Spec / plan-fingerprint schema
	// the peers must share (v2: canonical Spec JSON + enumerated sites).
	// Two builds with different Spec schemas would compute different
	// plans from one Spec; refusing the handshake beats a cryptic merge
	// rejection half a campaign later.
	SpecSchemaVersion = 2
)

// maxFrame bounds one frame's payload. Shard partials for realistic
// campaigns are well under this; anything larger is a corrupt or hostile
// length header, and refusing it beats a multi-gigabyte allocation.
const maxFrame = 64 << 20

// Network classifies a listen/dial address: anything containing a path
// separator (or an abstract-socket @ prefix) is a Unix socket, the rest
// is TCP host:port. One rule shared by Listen and Dial, so a dpmrd
// -listen address is always dialable by the same spelling.
func Network(addr string) string {
	if strings.Contains(addr, "/") || strings.HasPrefix(addr, "@") {
		return "unix"
	}
	return "tcp"
}

// Listen opens the daemon's listener on a TCP host:port or Unix socket
// path (see Network). Errors name the address and network — a bad
// -listen value must fail loudly, not hang.
func Listen(addr string) (net.Listener, error) {
	nw := Network(addr)
	ln, err := net.Listen(nw, addr)
	if err != nil {
		return nil, fmt.Errorf("coordnet: listen %s %q: %w", nw, addr, err)
	}
	return ln, nil
}

// dial connects to a daemon address under ctx's cancellation.
func dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	nw := Network(addr)
	conn, err := d.DialContext(ctx, nw, addr)
	if err != nil {
		return nil, fmt.Errorf("coordnet: dial %s %q: %w", nw, addr, err)
	}
	return conn, nil
}

// writeFrame sends v as one length-delimited JSON frame. The header and
// payload go out in a single Write, so a frame is never interleaved by
// the kernel with another writer's bytes (callers still serialize writes
// per connection; the protocol has exactly one writer per direction).
func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("coordnet: encoding frame: %w", err)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("coordnet: %d-byte frame exceeds the %d-byte limit", len(data), maxFrame)
	}
	buf := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(buf, uint32(len(data)))
	copy(buf[4:], data)
	if act := failpt.Eval(siteFrameWrite); act != nil {
		switch act.Kind {
		case failpt.KindSever:
			sever(w)
			return fmt.Errorf("coordnet: frame write severed (failpt %s)", siteFrameWrite)
		case failpt.KindTorn:
			n := act.N
			if n > len(buf) {
				n = len(buf)
			}
			_, _ = w.Write(buf[:n])
			sever(w)
			return fmt.Errorf("coordnet: frame torn after %d of %d bytes (failpt %s)", n, len(buf), siteFrameWrite)
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("coordnet: writing frame: %w", err)
	}
	return nil
}

// readFrame reads one length-delimited JSON frame into v. A clean close
// at a frame boundary returns io.EOF unwrapped, so callers can tell an
// orderly shutdown from a mid-frame transport failure.
func readFrame(r io.Reader, v any) error {
	if act := failpt.Eval(siteFrameRead); act != nil && act.Kind == failpt.KindSever {
		sever(r)
		return fmt.Errorf("coordnet: frame read severed (failpt %s)", siteFrameRead)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("coordnet: %d-byte frame exceeds the %d-byte limit", n, maxFrame)
	}
	data := make([]byte, n)
	if m, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("coordnet: frame truncated after %d of %d bytes: %w", m, n, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("coordnet: decoding frame: %w", err)
	}
	return nil
}
