// Package coordnet promotes the coordinator's JSON Assignment/Completion
// protocol from stdio pipes to a network transport: a campaign service
// (Server, the dpmrd daemon) that schedules Specs submitted by many
// concurrent clients onto a persistent fleet of remote and in-process
// workers.
//
// The wire format is deliberately thin: every message is one
// length-delimited frame — a 4-byte big-endian byte count followed by
// exactly that many bytes of JSON — and the JSON inside reuses the
// existing protocol types (coord.Assignment, coord.Completion,
// harness.Spec, the Session event wire form) unchanged. A connection
// opens with a versioned hello naming the protocol and Spec-schema
// versions plus the peer's role (worker or client); any mismatch is
// refused by name before the first assignment, never negotiated around.
//
// Faults are the coordinator's existing vocabulary: a severed worker
// socket surfaces as a failed attempt, so the shard is re-leased exactly
// as if a spawned worker process had died — and because every shard of a
// plan is a pure function of its range, the re-delivered result merges
// byte-identically under the downstream fingerprint + exact-tiling
// validation. Nothing about correctness lives in the transport.
package coordnet

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
)

// Protocol identity, checked by the hello handshake before any
// assignment or submission flows.
const (
	// ProtoVersion is the framing + message-schema version of this
	// package. Bump it when the wire format changes incompatibly.
	ProtoVersion = 1
	// SpecSchemaVersion names the harness.Spec / plan-fingerprint schema
	// the peers must share (v2: canonical Spec JSON + enumerated sites).
	// Two builds with different Spec schemas would compute different
	// plans from one Spec; refusing the handshake beats a cryptic merge
	// rejection half a campaign later.
	SpecSchemaVersion = 2
)

// maxFrame bounds one frame's payload. Shard partials for realistic
// campaigns are well under this; anything larger is a corrupt or hostile
// length header, and refusing it beats a multi-gigabyte allocation.
const maxFrame = 64 << 20

// Network classifies a listen/dial address: anything containing a path
// separator (or an abstract-socket @ prefix) is a Unix socket, the rest
// is TCP host:port. One rule shared by Listen and Dial, so a dpmrd
// -listen address is always dialable by the same spelling.
func Network(addr string) string {
	if strings.Contains(addr, "/") || strings.HasPrefix(addr, "@") {
		return "unix"
	}
	return "tcp"
}

// Listen opens the daemon's listener on a TCP host:port or Unix socket
// path (see Network). Errors name the address and network — a bad
// -listen value must fail loudly, not hang.
func Listen(addr string) (net.Listener, error) {
	nw := Network(addr)
	ln, err := net.Listen(nw, addr)
	if err != nil {
		return nil, fmt.Errorf("coordnet: listen %s %q: %w", nw, addr, err)
	}
	return ln, nil
}

// dial connects to a daemon address under ctx's cancellation.
func dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	nw := Network(addr)
	conn, err := d.DialContext(ctx, nw, addr)
	if err != nil {
		return nil, fmt.Errorf("coordnet: dial %s %q: %w", nw, addr, err)
	}
	return conn, nil
}

// writeFrame sends v as one length-delimited JSON frame. The header and
// payload go out in a single Write, so a frame is never interleaved by
// the kernel with another writer's bytes (callers still serialize writes
// per connection; the protocol has exactly one writer per direction).
func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("coordnet: encoding frame: %w", err)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("coordnet: %d-byte frame exceeds the %d-byte limit", len(data), maxFrame)
	}
	buf := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(buf, uint32(len(data)))
	copy(buf[4:], data)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("coordnet: writing frame: %w", err)
	}
	return nil
}

// readFrame reads one length-delimited JSON frame into v. A clean close
// at a frame boundary returns io.EOF unwrapped, so callers can tell an
// orderly shutdown from a mid-frame transport failure.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("coordnet: %d-byte frame exceeds the %d-byte limit", n, maxFrame)
	}
	data := make([]byte, n)
	if m, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("coordnet: frame truncated after %d of %d bytes: %w", m, n, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("coordnet: decoding frame: %w", err)
	}
	return nil
}
