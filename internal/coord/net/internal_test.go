package coordnet

// White-box transport drills that need the frame vocabulary directly.

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/harness"
)

// TestCompletionThenSocketCloseDelivers drills the worker that dies in
// the gap between sending its Completion and the socket closing: the
// completion must still be delivered (the shard is not re-run for a
// result already on the wire), and the death must surface as a
// transport error on the worker's next use — never a half-alive pool
// slot. Together with the coordinator's duplicate discard this is why
// a worker crash right after reporting cannot double-count a shard.
func TestCompletionThenSocketCloseDelivers(t *testing.T) {
	daemonSide, workerSide := net.Pipe()
	w := newRemoteWorker(daemonSide)
	defer w.Close()

	shard := harness.ShardSpec{Index: 0, Count: 2}
	want := []byte(`{"shard":0}`)
	go func() {
		var f workerFrame
		if err := readFrame(workerSide, &f); err != nil || f.Assign == nil {
			workerSide.Close()
			return
		}
		// Report the shard, then die before anything else touches the
		// socket — the crash window this test exists for.
		_ = writeFrame(workerSide, workerReply{Completion: &coord.Completion{Shard: f.Assign.Shard, Payload: want}})
		workerSide.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := w.Run(ctx, harness.Spec{}, shard)
	if err != nil {
		t.Fatalf("completion sent before the socket died was lost: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload %s, want %s", got, want)
	}

	if _, err := w.Run(ctx, harness.Spec{}, shard); err == nil {
		t.Fatal("dead worker accepted a second assignment; the death went undetected")
	}
}
