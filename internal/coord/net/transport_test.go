package coordnet

// Transport-layer tests with package-internal access: framing limits,
// handshake refusals (both directions, bounded — a version skew must be
// a named error, never a hang), and the keepalive sweep dropping a
// silently dead worker socket.

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"dpmr/internal/harness"
)

func TestNetworkClassification(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:9021":  "tcp",
		"fleet.host:9021": "tcp",
		"/tmp/fleet.sock": "unix",
		"./fleet.sock":    "unix",
		"@fleet":          "unix",
	}
	for addr, want := range cases {
		if got := Network(addr); got != want {
			t.Errorf("Network(%q) = %q, want %q", addr, got, want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sent := hello{Proto: 7, Schema: 9, Role: "worker"}
	if err := writeFrame(&buf, sent); err != nil {
		t.Fatal(err)
	}
	var got hello
	if err := readFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != sent {
		t.Errorf("round trip changed the frame: sent %+v, got %+v", sent, got)
	}
}

func TestFrameRejectsOversizedHeader(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	var v struct{}
	err := readFrame(bytes.NewReader(hdr[:]), &v)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized header error = %v, want a named size refusal", err)
	}
}

func TestFrameReportsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, hello{Proto: 1}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	var got hello
	err := readFrame(bytes.NewReader(cut), &got)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated frame error = %v, want a named truncation", err)
	}
}

// refusalFor dials the listener, sends h as the opening hello, and
// returns the daemon's reply. The 5s deadline turns a hang into a
// test failure instead of a stuck suite.
func refusalFor(t *testing.T, addr string, h hello) helloReply {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrame(conn, h); err != nil {
		t.Fatal(err)
	}
	var reply helloReply
	if err := readFrame(conn, &reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestHandshakeRefusesMismatches: wrong protocol version, wrong Spec
// schema, and an unknown role are each refused by name before any
// assignment flows, and the daemon's reply still carries its own
// versions so the peer can say what would have been compatible.
func TestHandshakeRefusesMismatches(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	addr := ln.Addr().String()

	cases := []struct {
		name string
		h    hello
		want string
	}{
		{"protocol", hello{Proto: ProtoVersion + 1, Schema: SpecSchemaVersion, Role: roleWorker}, "protocol version mismatch"},
		{"schema", hello{Proto: ProtoVersion, Schema: SpecSchemaVersion + 1, Role: roleClient}, "spec schema mismatch"},
		{"role", hello{Proto: ProtoVersion, Schema: SpecSchemaVersion, Role: "observer"}, "unknown role"},
	}
	for _, tc := range cases {
		reply := refusalFor(t, addr, tc.h)
		if !strings.Contains(reply.Refusal, tc.want) {
			t.Errorf("%s: refusal %q does not name %q", tc.name, reply.Refusal, tc.want)
		}
		if reply.Proto != ProtoVersion || reply.Schema != SpecSchemaVersion {
			t.Errorf("%s: refusal carries versions %d/%d, want the daemon's %d/%d",
				tc.name, reply.Proto, reply.Schema, ProtoVersion, SpecSchemaVersion)
		}
	}
}

// TestDialerRejectsVersionSkew: a client dialing a daemon from a
// different protocol generation gets a named error, not a hang — here
// the "daemon" is a stub speaking a future version.
func TestDialerRejectsVersionSkew(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var h hello
		_ = readFrame(conn, &h)
		_ = writeFrame(conn, helloReply{Proto: ProtoVersion + 1, Schema: SpecSchemaVersion})
	}()

	_, err = Submit(context.Background(), ln.Addr().String(), harness.ExperimentSpec("fig3.7"), nil)
	if err == nil || !strings.Contains(err.Error(), "speaks protocol") {
		t.Errorf("Submit against a version-skewed daemon = %v, want a named version error", err)
	}
}

// TestSubmitBadAddressFailsFast: an unreachable daemon address is an
// immediate named dial error.
func TestSubmitBadAddressFailsFast(t *testing.T) {
	_, err := Submit(context.Background(), t.TempDir()+"/no-such-daemon.sock", harness.ExperimentSpec("fig3.7"), nil)
	if err == nil || !strings.Contains(err.Error(), "dial unix") {
		t.Errorf("Submit to a dead socket = %v, want a named dial error", err)
	}
}

// TestListenBadAddress: an unbindable -listen value errors by name.
func TestListenBadAddress(t *testing.T) {
	if _, err := Listen("256.0.0.1:port"); err == nil || !strings.Contains(err.Error(), "listen tcp") {
		t.Errorf("Listen on a bad address = %v, want a named listen error", err)
	}
}

// TestKeepaliveDropsDeadWorker: a worker socket that handshakes and
// then goes silent (a frozen process — the connection is open but
// nothing answers) is discovered by the keepalive sweep and dropped
// from the fleet before a shard is wasted on it.
func TestKeepaliveDropsDeadWorker(t *testing.T) {
	srv := NewServer(ServerConfig{Keepalive: 20 * time.Millisecond})
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := dialerHandshake(conn, roleWorker); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.FleetSize() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never joined the fleet")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Never answer the pings: the sweep must evict the socket.
	for srv.FleetSize() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("keepalive never dropped the silent worker (fleet %d)", srv.FleetSize())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
