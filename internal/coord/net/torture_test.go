package coordnet_test

// The seeded torture drill — the robustness headline. Each iteration
// derives a randomized failpoint schedule from a seed (printed for
// replay: DPMR_TORTURE_SEED=<n> go test -run Torture), arms it over a
// full remote campaign — daemon, fleet workers over real sockets,
// journaled submission — and asserts the two-outcome invariant: the
// merged result is identical to the undisturbed baseline, or the
// submission fails with a named error. Never a silent divergence,
// never a hang (the submission deadline), never a goroutine leak.

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	coordnet "dpmr/internal/coord/net"
	"dpmr/internal/failpt"
	"dpmr/internal/harness"
)

// tortureIterations is how many derived schedules one test run drills.
const tortureIterations = 3

// tortureSeed resolves the drill's base seed: the env override for
// replaying a failure, otherwise the clock.
func tortureSeed(t *testing.T) int64 {
	if s := os.Getenv("DPMR_TORTURE_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("DPMR_TORTURE_SEED=%q: %v", s, err)
		}
		return n
	}
	return time.Now().UnixNano()
}

// launchTolerantWorkers runs n fleet workers that, unlike joinWorkers,
// tolerate failed joins: an armed schedule may sever the very
// handshake, and a torture worker's job is to keep redialing the way
// a supervised dpmrd -connect process would be restarted.
func launchTolerantWorkers(ctx context.Context, n int, addr string) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				_ = coordnet.WorkerLoop(ctx, addr, harness.Options{Evict: true}, nil)
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}
	return &wg
}

func TestSeededTortureDrill(t *testing.T) {
	spec := testCampaignSpec()
	golden, err := harness.NewRunner().RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	seed := tortureSeed(t)
	t.Logf("torture drill base seed %d (replay: DPMR_TORTURE_SEED=%d go test -run TestSeededTortureDrill ./internal/coord/net/)", seed, seed)

	for i := 0; i < tortureIterations; i++ {
		iterSeed := seed + int64(i)
		sched := failpt.RandomSchedule(iterSeed, 4)
		t.Logf("iteration %d: seed %d schedule %q", i, iterSeed, sched)

		before := runtime.NumGoroutine()
		srv, addr, shutdown := daemon(t, coordnet.ServerConfig{
			JournalRoot: t.TempDir(),
			Lease:       2 * time.Second,
			Keepalive:   200 * time.Millisecond,
		})
		wctx, wcancel := context.WithCancel(context.Background())
		workers := launchTolerantWorkers(wctx, 3, addr)

		// Give the fleet a moment to assemble before the faults arm; a
		// drill against an empty fleet only ever exercises checkout
		// timeouts. Proceed regardless — that outcome is legal too.
		assembleDeadline := time.Now().Add(2 * time.Second)
		for srv.FleetSize() < 3 && time.Now().Before(assembleDeadline) {
			time.Sleep(5 * time.Millisecond)
		}

		if err := failpt.Arm(sched); err != nil {
			t.Fatalf("iteration %d: RandomSchedule produced an unarmable schedule %q: %v", i, sched, err)
		}

		// The hang bound: a drill outcome must arrive within the
		// deadline or the iteration fails — "no third outcome" includes
		// no wedging.
		sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
		payloads, err := coordnet.Submit(sctx, addr, spec, nil)
		wedged := sctx.Err() != nil
		scancel()
		failpt.Disarm()

		hits := failpt.Sites()
		var fired []string
		for site, n := range hits {
			if n > 0 {
				fired = append(fired, site+"="+strconv.Itoa(n))
			}
		}
		sort.Strings(fired)
		t.Logf("iteration %d: site hits %v", i, fired)

		switch {
		case wedged:
			t.Errorf("iteration %d (seed %d): drill wedged past the %v deadline — the forbidden third outcome", i, iterSeed, 60*time.Second)
		case err != nil:
			// Outcome 2: a named refusal. The error must say something —
			// an empty message is a silent failure with an exit code.
			if err.Error() == "" {
				t.Errorf("iteration %d (seed %d): refusal carries no name", i, iterSeed)
			}
			t.Logf("iteration %d: named refusal: %v", i, err)
		default:
			// Outcome 1: byte-identical to the undisturbed run.
			parts := make([]*harness.PartialResult, len(payloads))
			decodeErr := false
			for k, payload := range payloads {
				p, derr := harness.DecodePartial(bytes.NewReader(payload))
				if derr != nil {
					t.Errorf("iteration %d (seed %d): undecodable shard payload: %v", i, iterSeed, derr)
					decodeErr = true
					break
				}
				parts[k] = p
			}
			if !decodeErr {
				merged, merr := harness.NewRunner().MergeCampaign(spec, parts)
				if merr != nil {
					t.Errorf("iteration %d (seed %d): survived payloads do not merge: %v", i, iterSeed, merr)
				} else if !reflect.DeepEqual(golden, merged) {
					t.Errorf("iteration %d (seed %d): SILENT DIVERGENCE — merged result differs from the undisturbed run", i, iterSeed)
				} else {
					t.Logf("iteration %d: identical merged result", i)
				}
			}
		}

		wcancel()
		workers.Wait()
		shutdown()
		checkGoroutines(t, before)
	}
}
