package coordnet

import (
	"context"
	"errors"
	"fmt"
	"io"

	"dpmr/internal/harness"
)

// Submit sends one Spec to a dpmrd daemon at addr and blocks until the
// campaign finishes, returning the shard partial payloads in ascending
// trial order. sink, when non-nil, receives the daemon's streamed shard
// events as they arrive — the same typed events a local Session emits,
// so -remote progress renders identically to local progress. The caller
// merges the payloads itself (GenerateMerged, MergeCampaign): the
// fingerprint + exact-tiling validation happens on this side of the
// wire, so a byte of transport corruption or a daemon running a
// different plan is caught here, not trusted.
func Submit(ctx context.Context, addr string, spec harness.Spec, sink func(harness.Event)) ([][]byte, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	conn, err := dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := dialerHandshake(conn, roleClient); err != nil {
		return nil, err
	}
	// Cancellation severs the connection; the daemon's disconnect
	// watchdog then cancels the submission and releases its workers.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if err := writeFrame(conn, submitRequest{Spec: n}); err != nil {
		return nil, fmt.Errorf("coordnet: submitting spec to %s: %w", addr, err)
	}
	for {
		var frame serverFrame
		if err := readFrame(conn, &frame); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("coordnet: daemon %s closed the connection before delivering a result", addr)
			}
			return nil, fmt.Errorf("coordnet: streaming from %s: %w", addr, err)
		}
		switch {
		case frame.Done != nil:
			if frame.Done.Error != "" {
				return nil, fmt.Errorf("coordnet: daemon %s: %s", addr, frame.Done.Error)
			}
			return frame.Done.Payloads, nil
		case frame.Event != nil:
			ev, err := harness.DecodeEvent(frame.Event)
			if err != nil {
				return nil, fmt.Errorf("coordnet: daemon %s sent a malformed event: %w", addr, err)
			}
			if sink != nil {
				sink(ev)
			}
		default:
			return nil, fmt.Errorf("coordnet: daemon %s sent a frame with neither event nor result", addr)
		}
	}
}
