package coordnet

// The connection-level protocol. Every connection — worker or client —
// opens with one hello/reply exchange under a deadline, so a version
// mismatch (or a peer speaking something else entirely) is a named
// refusal within handshakeTimeout, never a hang. After the handshake the
// connection speaks its role's frame vocabulary:
//
//	worker:  daemon → workerFrame{Ping | Assign},
//	         worker → workerReply{Pong | Completion}
//	client:  client → submitRequest{Spec},
//	         daemon → serverFrame{Event}... serverFrame{Done}
//
// Assignment and Completion are the coordinator's existing stdio
// protocol types, embedded verbatim; the framing is the only new layer.

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/failpt"
	"dpmr/internal/harness"
)

// net/handshake stalls the daemon side of the hello exchange — a
// wedged peer drill. A stall longer than handshakeTimeout turns into
// the deadline's named disconnect; a shorter one just delays the join.
var siteHandshake = failpt.Register("net/handshake", failpt.KindStall)

// Peer roles named in the hello.
const (
	roleWorker = "worker"
	roleClient = "client"
)

// handshakeTimeout bounds the hello exchange and the client's submit
// frame: a silent or wedged peer is disconnected, not waited on.
const handshakeTimeout = 10 * time.Second

// hello opens every connection: the dialer names its protocol and
// Spec-schema versions and its role.
type hello struct {
	Proto  int    `json:"proto"`
	Schema int    `json:"schema"`
	Role   string `json:"role"`
}

// helloReply answers a hello: the daemon's own versions, plus a refusal
// naming the mismatch when the connection cannot proceed.
type helloReply struct {
	Proto   int    `json:"proto"`
	Schema  int    `json:"schema"`
	Refusal string `json:"refusal,omitempty"`
}

// workerFrame is one daemon→worker message: a keepalive ping, or a shard
// assignment carrying the Spec (the existing coordinator encoding).
type workerFrame struct {
	Ping   bool              `json:"ping,omitempty"`
	Assign *coord.Assignment `json:"assign,omitempty"`
}

// workerReply is one worker→daemon message: the pong answering a ping,
// or the completion answering an assignment.
type workerReply struct {
	Pong       bool              `json:"pong,omitempty"`
	Completion *coord.Completion `json:"completion,omitempty"`
}

// submitRequest is the client's one request: run this Spec.
type submitRequest struct {
	Spec harness.Spec `json:"spec"`
}

// serverFrame is one daemon→client message while a submission runs: a
// marshaled Session event (harness.EncodeEvent bytes), or the final
// result.
type serverFrame struct {
	Event json.RawMessage `json:"event,omitempty"`
	Done  *submitResult   `json:"done,omitempty"`
}

// submitResult ends a submission: the shard partial payloads in schedule
// order (each a JSON document the harness merge layer validates), or the
// error that stopped the run.
type submitResult struct {
	Payloads [][]byte `json:"payloads"`
	Error    string   `json:"error,omitempty"`
}

// dialerHandshake runs the dialing side of the hello exchange for role.
// A refusal from the daemon — or a version skew the daemon somehow
// accepted — is a named error.
func dialerHandshake(conn net.Conn, role string) error {
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return fmt.Errorf("coordnet: handshake deadline: %w", err)
	}
	if err := writeFrame(conn, hello{Proto: ProtoVersion, Schema: SpecSchemaVersion, Role: role}); err != nil {
		return fmt.Errorf("coordnet: sending hello: %w", err)
	}
	var reply helloReply
	if err := readFrame(conn, &reply); err != nil {
		return fmt.Errorf("coordnet: reading hello reply: %w", err)
	}
	if reply.Refusal != "" {
		return fmt.Errorf("coordnet: daemon refused the %s handshake: %s", role, reply.Refusal)
	}
	if reply.Proto != ProtoVersion || reply.Schema != SpecSchemaVersion {
		return fmt.Errorf("coordnet: daemon speaks protocol %d / spec schema %d, this build speaks %d / %d",
			reply.Proto, reply.Schema, ProtoVersion, SpecSchemaVersion)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("coordnet: clearing handshake deadline: %w", err)
	}
	return nil
}

// listenerHandshake runs the daemon side of the hello exchange and
// returns the peer's role. Mismatches are answered with a refusal frame
// naming both sides' versions, then the error closes the connection.
func listenerHandshake(conn net.Conn) (string, error) {
	if act := failpt.Eval(siteHandshake); act != nil {
		act.Sleep()
	}
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return "", fmt.Errorf("coordnet: handshake deadline: %w", err)
	}
	var h hello
	if err := readFrame(conn, &h); err != nil {
		return "", fmt.Errorf("coordnet: reading hello: %w", err)
	}
	refuse := func(format string, args ...any) (string, error) {
		msg := fmt.Sprintf(format, args...)
		// Best-effort: the refusal is for the peer's benefit; the error
		// below closes the connection either way.
		_ = writeFrame(conn, helloReply{Proto: ProtoVersion, Schema: SpecSchemaVersion, Refusal: msg})
		return "", fmt.Errorf("coordnet: refused %s: %s", conn.RemoteAddr(), msg)
	}
	if h.Proto != ProtoVersion {
		return refuse("protocol version mismatch: peer speaks %d, this daemon speaks %d", h.Proto, ProtoVersion)
	}
	if h.Schema != SpecSchemaVersion {
		return refuse("spec schema mismatch: peer speaks %d, this daemon speaks %d — one side computes different plans from the same Spec", h.Schema, SpecSchemaVersion)
	}
	if h.Role != roleWorker && h.Role != roleClient {
		return refuse("unknown role %q: want %q or %q", h.Role, roleWorker, roleClient)
	}
	if err := writeFrame(conn, helloReply{Proto: ProtoVersion, Schema: SpecSchemaVersion}); err != nil {
		return "", fmt.Errorf("coordnet: answering hello: %w", err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return "", fmt.Errorf("coordnet: clearing handshake deadline: %w", err)
	}
	return h.Role, nil
}
