package coordnet_test

// End-to-end drills for the networked campaign service, all in-process
// over real sockets: daemon, fleet, and clients share the test binary
// but speak the same frames the spawned `dpmrd` binaries do. Every test
// ends with a goroutine-leak check — a daemon that sheds connections
// but not goroutines would pass every functional assertion and still be
// unfit to run always-on.

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	coordnet "dpmr/internal/coord/net"
	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/journal"
	"dpmr/internal/workloads"
)

// daemon spins up a Server on a loopback TCP listener and returns its
// address plus a shutdown func that drains it and verifies Serve exits.
func daemon(t *testing.T, cfg coordnet.ServerConfig) (*coordnet.Server, string, func()) {
	t.Helper()
	srv := coordnet.NewServer(cfg)
	ln, err := coordnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	shutdown := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not drain within 10s of cancellation")
		}
	}
	return srv, ln.Addr().String(), shutdown
}

// joinWorkers starts n fleet workers against addr and waits until the
// daemon has all of them pooled. The returned stop func cancels the
// workers and waits for their loops to exit.
func joinWorkers(t *testing.T, srv *coordnet.Server, addr string, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := coordnet.WorkerLoop(ctx, addr, harness.Options{Evict: true}, nil); err != nil {
				t.Errorf("WorkerLoop: %v", err)
			}
		}()
	}
	waitFleet(t, srv, n)
	return func() {
		cancel()
		wg.Wait()
	}
}

func waitFleet(t *testing.T, srv *coordnet.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.FleetSize() < n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers (have %d)", n, srv.FleetSize())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkGoroutines polls until the goroutine count returns to the
// baseline, dumping stacks if it never does.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

func quickSpec(exp string) harness.Spec {
	s := harness.ExperimentSpec(exp)
	s.Quick = true
	return s
}

func unsharded(t *testing.T, exp string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := harness.Generate(context.Background(), quickSpec(exp), &buf, harness.Options{Evict: true}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mergePayloads(t *testing.T, spec harness.Spec, payloads [][]byte) []byte {
	t.Helper()
	readers := make([]io.Reader, len(payloads))
	for i, p := range payloads {
		readers[i] = bytes.NewReader(p)
	}
	var merged bytes.Buffer
	if err := harness.GenerateMerged(context.Background(), spec, &merged, readers, harness.Options{Evict: true}); err != nil {
		t.Fatal(err)
	}
	return merged.Bytes()
}

// testCampaignSpec is a small pure-campaign Spec (several shards' worth
// of trials) for the journaled submission paths.
func testCampaignSpec() harness.Spec {
	spec := harness.CampaignSpec(faultinject.ImmediateFree, workloads.All()[:1], []harness.Variant{
		harness.Stdapp(),
		harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
	})
	spec.Runs = 1
	spec.MaxSites = 6
	return spec
}

// TestRemoteFleetChaosByteIdentity is the PR's acceptance contract: a
// quick fig3.7 campaign submitted to a daemon whose fleet is three
// remote workers over real sockets, with chaos severing one socket
// mid-shard, merges byte-identical to an unsharded local run — and
// daemon shutdown plus worker teardown leak no goroutines.
func TestRemoteFleetChaosByteIdentity(t *testing.T) {
	golden := unsharded(t, "fig3.7")
	before := runtime.NumGoroutine()

	srv, addr, shutdown := daemon(t, coordnet.ServerConfig{Chaos: 1})
	stopWorkers := joinWorkers(t, srv, addr, 3)

	var events int
	payloads, err := coordnet.Submit(context.Background(), addr, quickSpec("fig3.7"), func(harness.Event) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no shard events streamed back")
	}
	merged := mergePayloads(t, quickSpec("fig3.7"), payloads)
	if !bytes.Equal(golden, merged) {
		t.Errorf("remote merge differs from unsharded run:\n--- unsharded ---\n%s\n--- remote ---\n%s", golden, merged)
	}

	stopWorkers()
	shutdown()
	checkGoroutines(t, before)
}

// TestMultiplexedClientsIsolated: two clients submit different Specs to
// one daemon concurrently; each merged report must be byte-identical to
// its own single-client baseline — the shared fleet never
// cross-contaminates campaigns.
func TestMultiplexedClientsIsolated(t *testing.T) {
	exps := []string{"fig3.7", "fig3.16"}
	goldens := make([][]byte, len(exps))
	for i, exp := range exps {
		goldens[i] = unsharded(t, exp)
	}
	before := runtime.NumGoroutine()

	_, addr, shutdown := daemon(t, coordnet.ServerConfig{LocalWorkers: 2})

	merged := make([][]byte, len(exps))
	var wg sync.WaitGroup
	for i, exp := range exps {
		i, exp := i, exp
		wg.Add(1)
		go func() {
			defer wg.Done()
			payloads, err := coordnet.Submit(context.Background(), addr, quickSpec(exp), nil)
			if err != nil {
				t.Errorf("%s: %v", exp, err)
				return
			}
			merged[i] = mergePayloads(t, quickSpec(exp), payloads)
		}()
	}
	wg.Wait()
	for i, exp := range exps {
		if merged[i] != nil && !bytes.Equal(goldens[i], merged[i]) {
			t.Errorf("%s: multiplexed merge differs from its single-client baseline", exp)
		}
	}

	shutdown()
	checkGoroutines(t, before)
}

// TestClientDisconnectResume: a client that vanishes mid-campaign
// cancels its submission (releasing the fleet to other tenants) but
// loses nothing durable — the daemon journaled every completed span, so
// resubmitting the identical Spec resumes from the journal and the
// final merge is byte-identical to a run that was never interrupted.
func TestClientDisconnectResume(t *testing.T) {
	spec := testCampaignSpec()
	golden, err := harness.NewRunner().RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	logs := make(chan string, 256)
	root := t.TempDir()
	_, addr, shutdown := daemon(t, coordnet.ServerConfig{
		LocalWorkers: 1,
		JournalRoot:  root,
		Log: func(format string, args ...any) {
			select {
			case logs <- strings.TrimSpace(format):
			default:
			}
		},
	})

	// Vanish after the first journaled shard: cancel the submit context
	// on the first streamed event, which severs the client socket.
	ctx, cancel := context.WithCancel(context.Background())
	_, err = coordnet.Submit(ctx, addr, spec, func(harness.Event) { cancel() })
	cancel()
	if err == nil {
		t.Fatal("interrupted Submit returned no error")
	}

	// Wait for the daemon to settle the severed submission (either it
	// noticed the disconnect and failed the run, or the run had already
	// finished and only the result delivery failed); both messages come
	// after the journal claim is released.
	deadline := time.After(10 * time.Second)
	for settled := false; !settled; {
		select {
		case line := <-logs:
			settled = strings.Contains(line, "submission failed") || strings.Contains(line, "delivering result")
		case <-deadline:
			t.Fatal("daemon never settled the severed submission")
		}
	}

	// The journal must have survived the disconnect.
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	jnl := filepath.Join(root, fp[:16], journal.FileName)
	if _, err := os.Stat(jnl); err != nil {
		t.Fatalf("no journal survived the disconnect: %v", err)
	}

	// Resubmit the identical Spec: the daemon resumes from the journal.
	payloads, err := coordnet.Submit(context.Background(), addr, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*harness.PartialResult, len(payloads))
	for i, payload := range payloads {
		p, err := harness.DecodePartial(bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	resumed, err := harness.NewRunner().MergeCampaign(spec, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(golden, resumed) {
		t.Errorf("resumed campaign differs from uninterrupted run:\n--- uninterrupted ---\n%#v\n--- resumed ---\n%#v",
			golden, resumed)
	}

	shutdown()
	checkGoroutines(t, before)
}

// TestWorkerRejoinAfterSever: a worker whose socket the daemon severs
// redials and rejoins the fleet, restoring capacity without operator
// action — the reconnect half of reconnect/resume.
func TestWorkerRejoinAfterSever(t *testing.T) {
	srv, addr, shutdown := daemon(t, coordnet.ServerConfig{Chaos: 1})
	stopWorkers := joinWorkers(t, srv, addr, 1)
	defer func() {
		stopWorkers()
		shutdown()
	}()

	// The single worker gets the chaos knife on its first shard; after
	// the sever it must come back, and the submission must still finish.
	payloads, err := coordnet.Submit(context.Background(), addr, quickSpec("fig3.16"), nil)
	if err != nil {
		t.Fatal(err)
	}
	golden := unsharded(t, "fig3.16")
	if merged := mergePayloads(t, quickSpec("fig3.16"), payloads); !bytes.Equal(golden, merged) {
		t.Error("post-sever merge differs from unsharded run")
	}
	waitFleet(t, srv, 1)
}
