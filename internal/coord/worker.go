package coord

// The coordinator↔worker streaming protocol: JSON lines over a byte
// stream (the worker process's stdio, or any Reader/Writer pair). The
// coordinator writes one Assignment per leased shard; the worker answers
// each with one Completion carrying the shard's serialized partial
// result. PartialResult, OverheadPartial, and ExperimentPartial are all
// JSON documents already, so they embed in Completion.Payload verbatim —
// partial results stream over the wire instead of through files.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"dpmr/internal/harness"
)

// Assignment is one coordinator→worker message: run this shard of this
// Spec's canonical plan. The Spec travels with every assignment, so a
// worker process needs no experiment description in its argv — its
// flags carry only execution policy (parallelism, compilation,
// eviction) and the coordinator remains the single source of *what*
// runs. Both sides hold the identical normalized Spec, so both compute
// the identical plan fingerprint; a worker fed a different Spec would
// produce partials the merge layer rejects.
type Assignment struct {
	Spec  harness.Spec      `json:"spec"`
	Shard harness.ShardSpec `json:"shard"`
}

// Completion is the worker→coordinator reply: the shard it ran, and
// either the shard's serialized partial result (a JSON document) or the
// error that stopped it.
type Completion struct {
	Shard   harness.ShardSpec `json:"shard"`
	Payload json.RawMessage   `json:"payload,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// Serve is the worker side of the streaming protocol: it decodes
// Assignments from r until EOF, executes each with run, and encodes one
// Completion per assignment to w. run receives the assignment's Spec
// and shard; its payload must be a JSON document (every harness partial
// Encode emits one). A run error is reported in-band and the worker
// stays alive for the next assignment; transport errors end the loop.
func Serve(r io.Reader, w io.Writer, run func(spec harness.Spec, shard harness.ShardSpec) ([]byte, error)) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var a Assignment
		if err := dec.Decode(&a); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("coord: worker: decoding assignment: %w", err)
		}
		c := Completion{Shard: a.Shard}
		if payload, err := run(a.Spec, a.Shard); err != nil {
			c.Error = err.Error()
		} else {
			c.Payload = json.RawMessage(payload)
		}
		if err := enc.Encode(c); err != nil {
			return fmt.Errorf("coord: worker: encoding completion: %w", err)
		}
	}
}

// ShardError reports a shard attempt that failed while its worker stayed
// healthy — an in-band Completion.Error from a live process, as opposed
// to a transport failure (dead process, closed pipe). The coordinator
// retries the shard without killing or respawning the worker, so a warm
// process survives a deterministic shard failure.
type ShardError struct {
	Shard harness.ShardSpec
	Msg   string
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("coord: shard %s: %s", e.Shard, e.Msg)
}

// Proc is a Worker backed by a spawned worker process (`dpmr-exp
// -worker`, `dpmr-run -worker`) speaking the JSON-lines protocol over
// its stdin/stdout. The process persists across assignments, so a worker
// serving several shards of one plan reuses its warm state; a process
// that dies mid-shard surfaces as a Run error and the coordinator
// reassigns the shard and respawns the slot, while an in-band shard
// error (ShardError) leaves the healthy process in place.
type Proc struct {
	cmd   *exec.Cmd
	stdin io.Closer
	enc   *json.Encoder
	dec   *json.Decoder

	mu     sync.Mutex
	closed bool
}

// NewProc spawns the worker process and connects its stdio to the
// protocol. Worker diagnostics go to stderr (nil means this process's
// os.Stderr), so a caller capturing its own diagnostics stream gets the
// fleet's too.
func NewProc(stderr io.Writer, name string, args ...string) (*Proc, error) {
	cmd := exec.Command(name, args...)
	if stderr == nil {
		stderr = os.Stderr
	}
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("coord: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("coord: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("coord: starting worker %s: %w", name, err)
	}
	return &Proc{cmd: cmd, stdin: stdin, enc: json.NewEncoder(stdin), dec: json.NewDecoder(stdout)}, nil
}

// Run implements Worker: lease one shard of the Spec's plan to the
// process and block for its completion. Cancelling ctx kills the
// process (the attempt is lost); a process death mid-shard surfaces as
// the decode error.
func (p *Proc) Run(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
	pid := p.cmd.Process.Pid
	if err := p.enc.Encode(Assignment{Spec: spec, Shard: shard}); err != nil {
		return nil, fmt.Errorf("coord: worker pid %d: leasing shard %s: %w", pid, shard, err)
	}
	type reply struct {
		c   Completion
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		var c Completion
		err := p.dec.Decode(&c)
		ch <- reply{c, err}
	}()
	select {
	case <-ctx.Done():
		_ = p.Close() // unblocks the decode; this Proc is spent
		return nil, ctx.Err()
	case r := <-ch:
		if r.err != nil {
			return nil, fmt.Errorf("coord: worker pid %d died mid-shard %s: %v", pid, shard, r.err)
		}
		if r.c.Shard != shard {
			return nil, fmt.Errorf("coord: worker pid %d answered shard %s, was leased %s", pid, r.c.Shard, shard)
		}
		if r.c.Error != "" {
			return nil, &ShardError{Shard: shard, Msg: r.c.Error}
		}
		return []byte(r.c.Payload), nil
	}
}

// Close kills the worker process (if still running) and reaps it. Safe
// to call concurrently with Run — the in-flight attempt then fails —
// and more than once.
func (p *Proc) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	_ = p.stdin.Close()      // EOF would let a healthy idle worker exit…
	_ = p.cmd.Process.Kill() // …but a mid-shard or wedged one is killed outright
	err := p.cmd.Wait()
	if err != nil {
		return fmt.Errorf("coord: worker pid %d: %w", p.cmd.Process.Pid, err)
	}
	return nil
}
