package coord

// The -coord* flag family shared by the CLIs. Registering and validating
// the flags here — next to FleetOptions — keeps the two binaries'
// coordinator surfaces from drifting apart: a new fleet knob or a new
// dependency rule lands in one place.

import (
	"flag"
	"fmt"
	"time"
)

// CLIFlags is the parsed -coord* flag family. Register it on a FlagSet,
// parse, then Validate the combination.
type CLIFlags struct {
	Workers int
	Shards  int
	Lease   time.Duration
	Spawn   bool
	Chaos   int
	Worker  bool

	leaseSet bool
}

// Register declares the flag family on fs. what names the unit being
// scheduled ("experiment", "campaign") in help text; workerHelp
// describes the -worker mode for this binary.
func (c *CLIFlags) Register(fs *flag.FlagSet, what, workerHelp string) {
	fs.IntVar(&c.Workers, "coord", 0,
		fmt.Sprintf("schedule the %s's shards on a coordinator with this many workers (0 = off)", what))
	fs.IntVar(&c.Shards, "coord-shards", 0,
		"shards to cut the plan into with -coord (default 2×workers; must be ≥ workers)")
	fs.DurationVar(&c.Lease, "coord-lease", 5*time.Minute,
		"with -coord: reassign a shard whose result has not arrived within this lease; a shard whose every retry also expires fails the run, so set it above the slowest expected shard (must be positive)")
	fs.BoolVar(&c.Spawn, "coord-spawn", false,
		"with -coord: workers are spawned '"+fs.Name()+" -worker' processes over JSON-lines stdio instead of in-process goroutines")
	fs.IntVar(&c.Chaos, "coord-chaos", 0,
		"with -coord-spawn: fault drill — kill this many workers after their first lease and rely on retry")
	fs.BoolVar(&c.Worker, "worker", false, workerHelp)
}

// Validate rejects inconsistent flag combinations after fs has parsed:
// every -coord-* flag needs -coord, the fleet needs at least one worker,
// and the plan must be cut at least as fine as the fleet. Call it with
// the parsed FlagSet so explicitly-set flags are distinguished from
// defaults.
func (c *CLIFlags) Validate(fs *flag.FlagSet) error {
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "coord-lease" {
			c.leaseSet = true
		}
	})
	if c.Workers < 0 {
		return fmt.Errorf("-coord %d: the fleet needs at least 1 worker", c.Workers)
	}
	if c.Workers == 0 {
		switch {
		case c.Shards != 0:
			return fmt.Errorf("-coord-shards requires -coord")
		case c.Spawn:
			return fmt.Errorf("-coord-spawn requires -coord")
		case c.leaseSet:
			return fmt.Errorf("-coord-lease requires -coord")
		}
	}
	if c.Shards != 0 && c.Shards < c.Workers {
		return fmt.Errorf("-coord-shards %d for %d workers: cut the plan at least as fine as the fleet", c.Shards, c.Workers)
	}
	if c.Lease <= 0 {
		return fmt.Errorf("-coord-lease %v: the lease must be positive (it bounds how long a straggling shard may withhold its result)", c.Lease)
	}
	if c.Chaos != 0 && !c.Spawn {
		return fmt.Errorf("-coord-chaos requires -coord-spawn (only spawned workers can be killed)")
	}
	return nil
}

// Enabled reports whether a coordinator run was requested.
func (c *CLIFlags) Enabled() bool { return c.Workers != 0 }
