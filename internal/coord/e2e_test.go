package coord_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"dpmr/internal/coord"
	"dpmr/internal/harness"
)

// coordinate runs the named experiment through a coordinator fleet of
// in-process workers and renders the merged report, with inject allowed
// to sabotage attempts (return an error after the shard ran — i.e. a
// worker forcibly failed mid-shard, its work lost).
func coordinate(t *testing.T, exp string, cfg coord.Config,
	inject func(shard harness.ShardSpec, payload []byte) ([]byte, error)) []byte {
	t.Helper()
	opts := harness.Options{Evict: true}
	// The worker runs whatever Spec its assignment carries — exactly what
	// a `dpmr-exp -worker` process does via harness.ShardPayload.
	fn := coord.Func(func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
		payload, err := harness.ShardPayload(ctx, spec, shard, opts)
		if err != nil {
			return nil, err
		}
		return inject(shard, payload)
	})
	cfg.Spec = quickSpec(exp)
	cfg.Spawn = func(int) (coord.Worker, error) { return fn, nil }
	co, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(payloads))
	for i, p := range payloads {
		readers[i] = bytes.NewReader(p)
	}
	var merged bytes.Buffer
	if err := harness.GenerateMerged(context.Background(), quickSpec(exp), &merged, readers, opts); err != nil {
		t.Fatal(err)
	}
	return merged.Bytes()
}

func quickSpec(exp string) harness.Spec {
	s := harness.ExperimentSpec(exp)
	s.Quick = true
	return s
}

func unsharded(t *testing.T, exp string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := harness.Generate(context.Background(), quickSpec(exp), &buf, harness.Options{Evict: true}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCoordinatorMergedReportByteIdentical is the PR's acceptance
// contract, in-process and race-clean: one worker is forcibly failed
// mid-shard (its completed work discarded), the coordinator retries the
// shard elsewhere, and the merged campaign report is byte-identical to
// an unsharded run of the same experiment.
func TestCoordinatorMergedReportByteIdentical(t *testing.T) {
	golden := unsharded(t, "fig3.7")
	var failed int32
	merged := coordinate(t, "fig3.7", coord.Config{Shards: 5, Workers: 3},
		func(_ harness.ShardSpec, payload []byte) ([]byte, error) {
			if atomic.CompareAndSwapInt32(&failed, 0, 1) {
				return nil, errors.New("worker forcibly failed mid-shard (injected)")
			}
			return payload, nil
		})
	if atomic.LoadInt32(&failed) != 1 {
		t.Fatal("the fault was never injected")
	}
	if !bytes.Equal(golden, merged) {
		t.Errorf("retried merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", golden, merged)
	}
}

// TestCoordinatorShardedOverheadByteIdentical drives an overhead
// experiment (fig3.16 runs no injection campaign at all) through the
// same coordinator pipeline: sharded RunOverhead partials, streamed,
// merged — byte-identical to the unsharded report even with a failed
// attempt in the mix.
func TestCoordinatorShardedOverheadByteIdentical(t *testing.T) {
	golden := unsharded(t, "fig3.16")
	var failed int32
	merged := coordinate(t, "fig3.16", coord.Config{Shards: 4, Workers: 2},
		func(_ harness.ShardSpec, payload []byte) ([]byte, error) {
			if atomic.CompareAndSwapInt32(&failed, 0, 1) {
				return nil, errors.New("worker forcibly failed mid-shard (injected)")
			}
			return payload, nil
		})
	if !bytes.Equal(golden, merged) {
		t.Errorf("sharded overhead merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", golden, merged)
	}
}

// TestCancelledCoordinatorSurvivorsMerge: cancelling a coordinator run
// mid-flight loses nothing durable — the partials its workers had
// already streamed merge cleanly with re-runs of the shards the fleet
// never finished, byte-identical to an unsharded run.
func TestCancelledCoordinatorSurvivorsMerge(t *testing.T) {
	const shards = 4
	const exp = "fig3.16"
	golden := unsharded(t, exp)
	opts := harness.Options{Evict: true}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	survived := map[int][]byte{}
	fn := coord.Func(func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
		p, err := harness.ShardPayload(ctx, spec, shard, opts)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		survived[shard.Index] = p
		n := len(survived)
		mu.Unlock()
		if n == 2 {
			cancel() // kill the run with half the plan streamed
		}
		return p, nil
	})
	co, err := coord.New(coord.Config{
		Spec: quickSpec(exp), Shards: shards, Workers: 2,
		Spawn: func(int) (coord.Worker, error) { return fn, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	// Run returned, so every worker goroutine has exited: survived is
	// stable. Recover by re-running only the missing shards.
	if len(survived) < 2 {
		t.Fatalf("only %d shards survived the cancelled run", len(survived))
	}
	for i := 0; i < shards; i++ {
		if _, ok := survived[i]; ok {
			continue
		}
		p, err := harness.ShardPayload(context.Background(), quickSpec(exp),
			harness.ShardSpec{Index: i, Count: shards}, opts)
		if err != nil {
			t.Fatal(err)
		}
		survived[i] = p
	}
	readers := make([]io.Reader, shards)
	for i := 0; i < shards; i++ {
		readers[i] = bytes.NewReader(survived[i])
	}
	var merged bytes.Buffer
	if err := harness.GenerateMerged(context.Background(), quickSpec(exp), &merged, readers, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, merged.Bytes()) {
		t.Errorf("survivor merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			golden, merged.String())
	}
}
