package coord_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"

	"dpmr/internal/coord"
	"dpmr/internal/harness"
)

// coordinate runs the named experiment through a coordinator fleet of
// in-process workers and renders the merged report, with inject allowed
// to sabotage attempts (return an error after the shard ran — i.e. a
// worker forcibly failed mid-shard, its work lost).
func coordinate(t *testing.T, exp string, cfg coord.Config,
	inject func(shard harness.ShardSpec, payload []byte) ([]byte, error)) []byte {
	t.Helper()
	opts := harness.Options{Quick: true, Evict: true}
	fn := coord.Func(func(_ context.Context, shard harness.ShardSpec) ([]byte, error) {
		var buf bytes.Buffer
		if err := harness.GenerateSharded(exp, shard, &buf, opts); err != nil {
			return nil, err
		}
		return inject(shard, buf.Bytes())
	})
	cfg.Spawn = func(int) (coord.Worker, error) { return fn, nil }
	co, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(payloads))
	for i, p := range payloads {
		readers[i] = bytes.NewReader(p)
	}
	var merged bytes.Buffer
	if err := harness.GenerateMerged(exp, &merged, readers, opts); err != nil {
		t.Fatal(err)
	}
	return merged.Bytes()
}

func unsharded(t *testing.T, exp string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := harness.Generate(exp, &buf, harness.Options{Quick: true, Evict: true}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCoordinatorMergedReportByteIdentical is the PR's acceptance
// contract, in-process and race-clean: one worker is forcibly failed
// mid-shard (its completed work discarded), the coordinator retries the
// shard elsewhere, and the merged campaign report is byte-identical to
// an unsharded run of the same experiment.
func TestCoordinatorMergedReportByteIdentical(t *testing.T) {
	golden := unsharded(t, "fig3.7")
	var failed int32
	merged := coordinate(t, "fig3.7", coord.Config{Shards: 5, Workers: 3},
		func(_ harness.ShardSpec, payload []byte) ([]byte, error) {
			if atomic.CompareAndSwapInt32(&failed, 0, 1) {
				return nil, errors.New("worker forcibly failed mid-shard (injected)")
			}
			return payload, nil
		})
	if atomic.LoadInt32(&failed) != 1 {
		t.Fatal("the fault was never injected")
	}
	if !bytes.Equal(golden, merged) {
		t.Errorf("retried merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", golden, merged)
	}
}

// TestCoordinatorShardedOverheadByteIdentical drives an overhead
// experiment (fig3.16 runs no injection campaign at all) through the
// same coordinator pipeline: sharded RunOverhead partials, streamed,
// merged — byte-identical to the unsharded report even with a failed
// attempt in the mix.
func TestCoordinatorShardedOverheadByteIdentical(t *testing.T) {
	golden := unsharded(t, "fig3.16")
	var failed int32
	merged := coordinate(t, "fig3.16", coord.Config{Shards: 4, Workers: 2},
		func(_ harness.ShardSpec, payload []byte) ([]byte, error) {
			if atomic.CompareAndSwapInt32(&failed, 0, 1) {
				return nil, errors.New("worker forcibly failed mid-shard (injected)")
			}
			return payload, nil
		})
	if !bytes.Equal(golden, merged) {
		t.Errorf("sharded overhead merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s", golden, merged)
	}
}
