package coord_test

// Scheduler-layer failpoint drills: poison shards refuse by name,
// dropped completions are recovered by the retry path, and injected
// dispatch crashes route through the quarantine breaker.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/failpt"
	"dpmr/internal/harness"
)

func armCoord(t *testing.T, sched string) {
	t.Helper()
	if err := failpt.Arm(sched); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpt.Disarm)
}

// TestPoisonShardNamedRefusal: a shard that kills every worker
// incarnation it touches is isolated after PoisonK distinct failures
// and the run refuses with the named PoisonShardError — not an
// endless retry, and not the blander attempts-exhausted error.
func TestPoisonShardNamedRefusal(t *testing.T) {
	poison := coord.Func(func(_ context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
		// A plain (non-ShardError) failure reads as a dead worker: the
		// slot respawns, so every attempt is a distinct incarnation.
		return nil, fmt.Errorf("worker murdered by shard %d", s.Index)
	})
	co, err := coord.New(coord.Config{
		Shards: 1, Workers: 1, MaxAttempts: 10, PoisonK: 3,
		Quarantine: -1, // no backoff: this test is about the refusal, not the pacing
		Spawn:      spawnFunc(poison),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = co.Run(context.Background())
	var pe *coord.PoisonShardError
	if !errors.As(err, &pe) {
		t.Fatalf("poison shard refused with %v, want PoisonShardError", err)
	}
	if pe.Shard != 0 || pe.Workers != 3 {
		t.Errorf("refusal names shard %d after %d workers, want shard 0 after 3", pe.Shard, pe.Workers)
	}
	if !strings.Contains(err.Error(), "poison") || !strings.Contains(err.Error(), "murdered") {
		t.Errorf("refusal %q does not name the poison state and last cause", err)
	}
}

// TestCompletionDropIsRecovered: a completion swallowed by the
// coord/completion failpoint (the worker died between finishing and
// delivering) is retried and the run still produces every payload.
func TestCompletionDropIsRecovered(t *testing.T) {
	armCoord(t, "coord/completion=drop@1")
	co, err := coord.New(coord.Config{
		Shards: 3, Workers: 2, Quarantine: -1, Spawn: spawnFunc(okWorker),
	})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatalf("run did not recover from a dropped completion: %v", err)
	}
	for i, p := range payloads {
		if len(p) == 0 {
			t.Errorf("shard %d payload missing after drop recovery", i)
		}
	}
	if failpt.Hits("coord/completion") == 0 {
		t.Fatal("drill never evaluated coord/completion — the pass is vacuous")
	}
}

// TestDispatchCrashQuarantinesWorker: injected dispatch-time crashes
// route the slot through the breaker — two consecutive crashes open
// the circuit, the quarantine is named in the scheduling log — and
// the run still completes.
func TestDispatchCrashQuarantinesWorker(t *testing.T) {
	armCoord(t, "coord/dispatch=err(EIO)@1;coord/dispatch=err(EIO)@2")
	var mu sync.Mutex
	var logs []string
	co, err := coord.New(coord.Config{
		Shards: 2, Workers: 1, Quarantine: time.Millisecond,
		Spawn: spawnFunc(okWorker),
		Log: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(context.Background()); err != nil {
		t.Fatalf("run did not survive an injected dispatch crash: %v", err)
	}
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "quarantined") {
		t.Errorf("no quarantine named in scheduling log:\n%s", joined)
	}
	// Whether the slot respawns or the run finishes on its sibling first
	// is a race; either way the quarantine was named and the shard
	// recovered, which is the contract.
}
