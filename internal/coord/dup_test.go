package coord_test

// Duplicate-completion suppression: a shard whose lease expired runs
// speculatively on two workers, both attempts complete, and the second
// result must be discarded by name — first result wins, the merge
// surface sees each shard exactly once. The choreography is
// channel-driven off the coordinator's own serialized log stream, so
// the duplicate is guaranteed to arrive while the run is still live:
// shard 1 cannot complete until the duplicate for shard 0 has been
// logged, and shard 0's straggler attempt is released only once its
// speculative retry has completed.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/harness"
)

func TestDuplicateCompletionSuppressed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	slowRelease := make(chan struct{}) // frees shard 0's straggler attempt
	dupSeen := make(chan struct{})     // closed when the duplicate is logged
	var releaseOnce, dupOnce sync.Once
	var att [4]int32

	fn := coord.Func(func(ctx context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
		n := atomic.AddInt32(&att[s.Index], 1)
		switch s.Index {
		case 0:
			// The straggler: attempt 1 wedges past its lease and completes
			// only after the speculative retry's result was accepted, so
			// its completion is the duplicate. The retry (attempt 2) is
			// instant.
			if n == 1 {
				select {
				case <-slowRelease:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		case 1:
			// The witness: pending until the duplicate has been processed,
			// which pins the scheduling loop open for it.
			select {
			case <-dupSeen:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return payload(s), nil
	})

	var mu sync.Mutex
	var logs []string
	co, err := coord.New(coord.Config{
		Shards:      4,
		Workers:     4,
		Lease:       250 * time.Millisecond,
		MaxAttempts: 2,
		Quarantine:  -1,
		Spawn:       spawnFunc(fn),
		Log: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			mu.Lock()
			logs = append(logs, line)
			mu.Unlock()
			if strings.Contains(line, "shard 0/4: complete") {
				releaseOnce.Do(func() { close(slowRelease) })
			}
			if strings.Contains(line, "duplicate completion discarded") {
				dupOnce.Do(func() { close(dupSeen) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(ctx)
	if err != nil {
		t.Fatalf("run with a speculative duplicate failed: %v", err)
	}
	for i, p := range payloads {
		want := payload(harness.ShardSpec{Index: i, Count: 4})
		if !bytes.Equal(p, want) {
			t.Errorf("shard %d: payload %s, want %s", i, p, want)
		}
	}
	if got := atomic.LoadInt32(&att[0]); got != 2 {
		t.Errorf("shard 0 ran %d attempts, want exactly 2 (original + speculative)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range logs {
		if strings.Contains(line, "shard 0/4: duplicate completion discarded") {
			return
		}
	}
	t.Errorf("no duplicate-discard log for shard 0; logs:\n%s", strings.Join(logs, "\n"))
}
