package coord

import (
	"testing"
	"time"
)

func TestBreakerStartsHealthy(t *testing.T) {
	b := NewBreaker(10 * time.Millisecond)
	if b.Quarantined() {
		t.Error("a fresh breaker is quarantined")
	}
	if got := b.Score(); got != 1.0 {
		t.Errorf("fresh score = %v, want 1.0", got)
	}
}

func TestBreakerQuarantinesOnFailureStreak(t *testing.T) {
	b := NewBreaker(10 * time.Millisecond)
	if d := b.Fail(); d != 0 { // score 0.5: an isolated crash respawns at once
		t.Fatalf("first failure from healthy quarantined for %v, want immediate respawn", d)
	}
	d2 := b.Fail() // score 0.25 < threshold: flapping opens the circuit
	if d2 <= 0 {
		t.Fatal("second consecutive failure did not quarantine")
	}
	if !b.Quarantined() {
		t.Error("breaker not quarantined after a failure streak")
	}
	// The backoff doubles per consecutive failure: each draw is jittered
	// in [d/2, d), so streak n's minimum (base·2^(n-1)/2) crosses the
	// previous streak's maximum after two steps.
	d4 := b.Fail()
	d4 = b.Fail()
	if d4 < d2 {
		t.Errorf("backoff shrank across a failure streak: %v then %v", d2, d4)
	}
}

func TestBreakerBackoffIsCappedAndJittered(t *testing.T) {
	b := NewBreaker(time.Second)
	var last time.Duration
	for i := 0; i < 20; i++ { // drive the shift far past the cap
		last = b.Fail()
	}
	if last >= quarantineCap {
		t.Errorf("backoff %v not capped below %v", last, quarantineCap)
	}
	if last < quarantineCap/2 {
		t.Errorf("capped backoff %v below jitter floor %v", last, quarantineCap/2)
	}
}

func TestBreakerRecoversOnSuccess(t *testing.T) {
	b := NewBreaker(10 * time.Millisecond)
	b.Fail()
	b.OK()
	if b.Quarantined() {
		t.Errorf("one success after one failure leaves score %v quarantined", b.Score())
	}
	// The streak reset means the next failure backs off from base again.
	if d := b.Fail(); d >= 20*time.Millisecond {
		t.Errorf("post-recovery backoff %v did not reset toward base", d)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0)
	for i := 0; i < 5; i++ {
		if d := b.Fail(); d != 0 {
			t.Fatalf("disabled breaker returned backoff %v", d)
		}
	}
	if !b.Quarantined() {
		t.Error("disabled breaker still scores health; streak of failures should read quarantined")
	}
}
