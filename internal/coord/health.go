package coord

// Per-worker health scoring and quarantine. A worker slot whose
// attempts keep dying (transport errors: the process crashed, the
// connection severed) used to be respawned immediately — under a
// persistent fault that is a hot loop burning CPU and log volume while
// producing nothing. The Breaker turns each slot into a small circuit:
// an EWMA over attempt outcomes scores the slot's recent health, and a
// slot below threshold is quarantined — its respawn delayed by an
// exponentially growing, jittered backoff — until successes pull the
// score back up. The jitter matters as much as the delay: a fleet of
// slots that all died together (a daemon restart, a severed network)
// must not respawn in lockstep against whatever killed them.

import (
	"math/rand"
	"sync"
	"time"
)

const (
	// healthAlpha is the EWMA smoothing factor: each outcome moves the
	// score alpha of the way toward 1 (success) or 0 (failure).
	healthAlpha = 0.5
	// healthThreshold is the score below which a slot is quarantined.
	// At alpha 0.5 one failure from healthy lands on 0.5 — still above
	// threshold, so an isolated crash respawns immediately (crash
	// retry must stay fast) — while a second consecutive failure lands
	// on 0.25 and opens the circuit: that is flapping, and flapping
	// waits.
	healthThreshold = 0.4
	// quarantineCap bounds the exponential backoff.
	quarantineCap = 5 * time.Second
	// DefaultQuarantine is the base quarantine used when Config leaves
	// Quarantine zero.
	DefaultQuarantine = 50 * time.Millisecond
)

// Breaker is one worker slot's health circuit: an EWMA score over
// attempt outcomes and the consecutive-failure streak that sizes the
// quarantine. Safe for concurrent use (the coordinator's worker
// goroutine and any observer may race).
type Breaker struct {
	mu     sync.Mutex
	score  float64
	streak int
	base   time.Duration
	rng    *rand.Rand
}

// NewBreaker returns a healthy Breaker (score 1.0) whose quarantines
// start at base and double per consecutive failure, capped at 5s.
// A non-positive base disables quarantine: Fail still scores, but
// returns 0.
func NewBreaker(base time.Duration) *Breaker {
	return &Breaker{
		score: 1.0,
		base:  base,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// OK records a successful attempt: the score recovers toward 1 and the
// failure streak resets, closing the circuit.
func (b *Breaker) OK() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.score = healthAlpha + (1-healthAlpha)*b.score
	b.streak = 0
}

// Fail records a failed attempt and returns how long the slot should
// stay quarantined before its worker is respawned: zero while the
// score is still above threshold (an isolated failure respawns
// immediately), otherwise base·2^(streak-1) capped at 5s, with uniform
// jitter in [d/2, d) so sibling slots that failed together do not
// respawn together.
func (b *Breaker) Fail() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.score = (1 - healthAlpha) * b.score
	b.streak++
	return b.backoffLocked()
}

// Backoff reports the quarantine delay an admission should wait right
// now, without recording an outcome: zero while the circuit is closed,
// otherwise the same jittered exponential the last failure imposed.
// This is the rejoin gate — a flapping fleet's reconnecting workers
// are admitted on the breaker's schedule, not the socket's.
func (b *Breaker) Backoff() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.backoffLocked()
}

func (b *Breaker) backoffLocked() time.Duration {
	if b.base <= 0 || b.score >= healthThreshold || b.streak < 1 {
		return 0
	}
	d := b.base << (b.streak - 1)
	if d > quarantineCap || d <= 0 { // <= 0: shift overflow on a long streak
		d = quarantineCap
	}
	return d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
}

// Score reports the slot's current EWMA health in [0, 1].
func (b *Breaker) Score() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.score
}

// Quarantined reports whether the slot is currently below the health
// threshold — the state a scheduler should refuse to lease through.
func (b *Breaker) Quarantined() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.score < healthThreshold
}
