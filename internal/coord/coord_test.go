package coord_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpmr/internal/coord"
	"dpmr/internal/harness"
)

// payload is the synthetic shard result the scheduler tests round-trip:
// the scheduler treats payloads as opaque bytes, so any JSON document
// will do.
func payload(s harness.ShardSpec) []byte {
	return []byte(fmt.Sprintf(`{"index":%d,"count":%d}`, s.Index, s.Count))
}

func okWorker(_ context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
	return payload(s), nil
}

func spawnFunc(f coord.Func) func(int) (coord.Worker, error) {
	return func(int) (coord.Worker, error) { return f, nil }
}

// TestCoordinatorCollectsAllShards: M shards across a smaller fleet come
// back complete and in shard order, regardless of completion order.
func TestCoordinatorCollectsAllShards(t *testing.T) {
	co, err := coord.New(coord.Config{Shards: 7, Workers: 3, Spawn: spawnFunc(okWorker)})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 7 {
		t.Fatalf("got %d payloads, want 7", len(payloads))
	}
	for i, p := range payloads {
		if want := string(payload(harness.ShardSpec{Index: i, Count: 7})); string(p) != want {
			t.Errorf("payload %d = %s, want %s", i, p, want)
		}
	}
}

// TestCoordinatorRetriesCrashedWorker: attempts that die mid-shard are
// reassigned, the failing slots are respawned, and the run still
// completes with every shard's result intact.
func TestCoordinatorRetriesCrashedWorker(t *testing.T) {
	var crashes int32 = 2 // the first two attempts overall die
	var spawns int32
	spawn := func(id int) (coord.Worker, error) {
		atomic.AddInt32(&spawns, 1)
		return coord.Func(func(_ context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
			if atomic.AddInt32(&crashes, -1) >= 0 {
				return nil, errors.New("worker killed mid-shard (injected)")
			}
			return payload(s), nil
		}), nil
	}
	// Quarantine off: both injected crashes may land on one slot, and a
	// quarantined slot's respawn can lose the race against the healthy
	// slot finishing the plan — this test counts respawns, so it wants
	// the pre-breaker immediate-respawn behavior.
	co, err := coord.New(coord.Config{Shards: 6, Workers: 2, Quarantine: -1, Spawn: spawn})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if want := string(payload(harness.ShardSpec{Index: i, Count: 6})); string(p) != want {
			t.Errorf("payload %d = %s, want %s", i, p, want)
		}
	}
	if got := atomic.LoadInt32(&spawns); got < 4 {
		t.Errorf("crashed slots were not respawned: %d spawns, want ≥ 4 (2 initial + 2 replacements)", got)
	}
}

// TestCoordinatorReassignsStraggler: a shard whose first attempt hangs
// past its lease is speculatively re-leased to another worker; the
// first-completed result wins and Run returns without waiting for the
// straggler (it is cancelled at shutdown).
func TestCoordinatorReassignsStraggler(t *testing.T) {
	var stalled int32
	var shard0Attempts int32
	fn := coord.Func(func(ctx context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
		if s.Index == 0 {
			atomic.AddInt32(&shard0Attempts, 1)
			if atomic.CompareAndSwapInt32(&stalled, 0, 1) {
				<-ctx.Done() // hang until the coordinator shuts down
				return nil, ctx.Err()
			}
		}
		return payload(s), nil
	})
	co, err := coord.New(coord.Config{
		Shards: 4, Workers: 2, Lease: 25 * time.Millisecond, Spawn: spawnFunc(fn),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var payloads [][]byte
	var runErr error
	go func() {
		payloads, runErr = co.Run(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not recover from the straggler")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	for i, p := range payloads {
		if want := string(payload(harness.ShardSpec{Index: i, Count: 4})); string(p) != want {
			t.Errorf("payload %d = %s, want %s", i, p, want)
		}
	}
	if got := atomic.LoadInt32(&shard0Attempts); got < 2 {
		t.Errorf("straggler shard was never re-leased: %d attempts", got)
	}
}

// TestCoordinatorFailsAfterMaxAttempts: a shard that fails on every
// attempt exhausts its budget and Run reports the shard and the last
// error instead of spinning forever.
func TestCoordinatorFailsAfterMaxAttempts(t *testing.T) {
	fn := coord.Func(func(_ context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
		if s.Index == 2 {
			return nil, errors.New("shard 2 is cursed")
		}
		return payload(s), nil
	})
	co, err := coord.New(coord.Config{Shards: 4, Workers: 2, MaxAttempts: 2, Spawn: spawnFunc(fn)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = co.Run(context.Background())
	if err == nil {
		t.Fatal("coordinator succeeded with an always-failing shard")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") || !strings.Contains(err.Error(), "cursed") {
		t.Errorf("error does not name the attempts and cause: %v", err)
	}
}

// TestCoordinatorFailsWhenAllAttemptsWedge: a shard whose every attempt
// hangs without erroring must fail loudly once all MaxAttempts leases
// have expired — never hang the fleet forever.
func TestCoordinatorFailsWhenAllAttemptsWedge(t *testing.T) {
	fn := coord.Func(func(ctx context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
		if s.Index == 1 {
			<-ctx.Done() // wedged: never completes, never errors
			return nil, ctx.Err()
		}
		return payload(s), nil
	})
	co, err := coord.New(coord.Config{
		Shards: 3, Workers: 3, Lease: 15 * time.Millisecond, MaxAttempts: 2, Spawn: spawnFunc(fn),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = co.Run(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung on the wedged shard")
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "lease") {
		t.Errorf("Run = %v, want a lease-exhaustion failure", runErr)
	}
}

// TestCoordinatorHonorsContextCancel: cancelling the caller's context
// stops the run promptly even with shards still pending.
func TestCoordinatorHonorsContextCancel(t *testing.T) {
	fn := coord.Func(func(ctx context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	co, err := coord.New(coord.Config{Shards: 2, Workers: 2, Spawn: spawnFunc(fn)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := co.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Run = %v, want context.Canceled", err)
	}
}

// TestCoordinatorConfigValidation covers New's rejection table.
func TestCoordinatorConfigValidation(t *testing.T) {
	spawn := spawnFunc(okWorker)
	cases := []struct {
		name    string
		cfg     coord.Config
		wantErr string
	}{
		{"zero workers", coord.Config{Shards: 2, Workers: 0, Spawn: spawn}, "at least 1"},
		{"zero shards", coord.Config{Shards: 0, Workers: 1, Spawn: spawn}, "at least 1"},
		{"fewer shards than workers", coord.Config{Shards: 2, Workers: 4, Spawn: spawn}, "at least as fine"},
		{"negative lease", coord.Config{Shards: 2, Workers: 2, Lease: -time.Second, Spawn: spawn}, "negative lease"},
		{"negative attempts", coord.Config{Shards: 2, Workers: 2, MaxAttempts: -1, Spawn: spawn}, "negative MaxAttempts"},
		{"no spawn", coord.Config{Shards: 2, Workers: 2}, "Spawn"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := coord.New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("New(%+v) err = %v, want %q", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

// TestServeProtocol drives the worker side of the wire protocol
// directly: assignments in (each carrying the Spec), completions out,
// run errors in-band.
func TestServeProtocol(t *testing.T) {
	in := strings.NewReader(
		`{"spec":{"kind":"campaign"},"shard":{"index":0,"count":3}}` + "\n" +
			`{"spec":{"kind":"campaign"},"shard":{"index":2,"count":3}}` + "\n")
	var out strings.Builder
	var seenKinds []harness.SpecKind
	err := coord.Serve(in, &out, func(spec harness.Spec, s harness.ShardSpec) ([]byte, error) {
		seenKinds = append(seenKinds, spec.Kind)
		if s.Index == 2 {
			return nil, errors.New("no can do")
		}
		return payload(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d completions, want 2:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], `"payload"`) || strings.Contains(lines[0], `"error"`) {
		t.Errorf("completion 0 should carry a payload: %s", lines[0])
	}
	if !strings.Contains(lines[1], "no can do") {
		t.Errorf("completion 1 should carry the in-band error: %s", lines[1])
	}
	for i, k := range seenKinds {
		if k != harness.SpecCampaign {
			t.Errorf("assignment %d: worker saw spec kind %q, want campaign", i, k)
		}
	}
}

// TestCoordinatorCarriesSpecToWorkers: the Spec in Config rides in every
// assignment — each Worker.Run observes it verbatim, so a worker never
// re-derives the experiment from anywhere else.
func TestCoordinatorCarriesSpecToWorkers(t *testing.T) {
	want := harness.ExperimentSpec("fig3.7")
	want.Quick = true
	var mismatches int32
	fn := coord.Func(func(_ context.Context, spec harness.Spec, s harness.ShardSpec) ([]byte, error) {
		if spec.Exp != want.Exp || !spec.Quick || spec.Kind != harness.SpecExperiment {
			atomic.AddInt32(&mismatches, 1)
		}
		return payload(s), nil
	})
	co, err := coord.New(coord.Config{Spec: want, Shards: 4, Workers: 2, Spawn: spawnFunc(fn)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&mismatches) != 0 {
		t.Errorf("%d assignments arrived with a different Spec", mismatches)
	}
}
