package coord_test

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dpmr/internal/coord"
	"dpmr/internal/dpmr"
	"dpmr/internal/harness"
)

func concurrentSpec() harness.Spec {
	return harness.ConcurrentSpec([]string{"chash", "cpipe"}, []harness.Variant{
		harness.Stdapp(),
		harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
	})
}

func renderConcurrent(t *testing.T, cr *harness.ConcurrentResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	harness.RenderConcurrent(&buf, cr)
	return buf.Bytes()
}

// TestCoordinatorConcurrentByteIdentical: concurrent campaigns ride the
// coordinator protocol unchanged — workers run scheduled multi-VM shards
// via the same ShardPayload entry the CLIs use, one worker is forcibly
// failed mid-shard and retried elsewhere, and the merged report (with
// its consistency-violation column) is byte-identical to an unsharded
// RunConcurrent of the same Spec.
func TestCoordinatorConcurrentByteIdentical(t *testing.T) {
	spec := concurrentSpec()
	direct, err := harness.NewRunner().RunConcurrent(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	golden := renderConcurrent(t, direct)

	var failed int32
	fn := coord.Func(func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
		payload, err := harness.ShardPayload(ctx, spec, shard, harness.Options{})
		if err != nil {
			return nil, err
		}
		if atomic.CompareAndSwapInt32(&failed, 0, 1) {
			return nil, errors.New("worker forcibly failed mid-shard (injected)")
		}
		return payload, nil
	})
	co, err := coord.New(coord.Config{
		Spec: spec, Shards: 3, Workers: 2,
		Spawn: func(int) (coord.Worker, error) { return fn, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&failed) != 1 {
		t.Fatal("the fault was never injected")
	}
	parts := make([]*harness.PartialResult, len(payloads))
	for i, p := range payloads {
		if parts[i], err = harness.DecodePartial(bytes.NewReader(p)); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := harness.NewRunner().MergeConcurrent(spec, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderConcurrent(t, merged); !bytes.Equal(golden, got) {
		t.Errorf("coordinated merge differs from unsharded run:\n--- unsharded ---\n%s--- merged ---\n%s", golden, got)
	}
}
