package coord_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dpmr/internal/coord"
	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/journal"
	"dpmr/internal/workloads"
)

func resumeCampaignSpec() harness.Spec {
	s := harness.CampaignSpec(faultinject.ImmediateFree, workloads.All()[:2], []harness.Variant{
		harness.Stdapp(),
		harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
	})
	s.MaxSites = 3
	return s
}

// journalPartial appends one completed campaign partial to the journal —
// the CLI-side record shape the coordinator's OnResult hook writes.
func journalPartial(t *testing.T, j *journal.Journal, planFP string, payload []byte) *harness.PartialResult {
	t.Helper()
	p, err := harness.DecodePartial(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journal.Record{
		PlanFP: planFP, Lo: p.Lo, Hi: p.Hi, Total: p.Total,
		ElapsedMS: p.ElapsedMS, Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCoordinatedResumeJournalDeterministic is satellite 4's coordinator
// leg: an interrupted journal resumed through the fleet — at 1 worker,
// and at 2 workers with an attempt forcibly failed mid-shard — cuts the
// identical adaptive span plan, journals every recovered span exactly
// once through OnResult, and merges byte-identical to a direct
// uninterrupted run.
func TestCoordinatedResumeJournalDeterministic(t *testing.T) {
	ctx := context.Background()
	spec := resumeCampaignSpec()
	direct, err := harness.NewRunner().RunCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := n.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := n.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt: journal the first 2 of 4 spans of a fresh cut, as if the
	// campaign died halfway.
	dir := t.TempDir()
	j, err := journal.Create(dir, canon, fp)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := harness.NewRunner().ResumeCampaign(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := 0
	for _, span := range fresh.Spans(4)[:2] {
		payload, err := harness.ShardPayload(ctx, spec, span, harness.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := journalPartial(t, j, fresh.PlanFP, payload)
		interrupted += p.Hi - p.Lo
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snapshot, err := os.ReadFile(filepath.Join(dir, journal.FileName))
	if err != nil {
		t.Fatal(err)
	}

	type fleetCase struct {
		name    string
		workers int
		sabot   bool // forcibly fail one attempt mid-shard
	}
	var cutSpans [][]harness.ShardSpec
	for _, fc := range []fleetCase{{"1-worker", 1, false}, {"2-workers-chaos", 2, true}} {
		t.Run(fc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, journal.FileName), snapshot, 0o644); err != nil {
				t.Fatal(err)
			}
			j, rp, err := journal.Open(dir, fp)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			c, err := harness.NewRunner().ResumeCampaign(spec, rp)
			if err != nil {
				t.Fatal(err)
			}
			if c.Done() != interrupted {
				t.Fatalf("journal covers %d trials, interruption left %d", c.Done(), interrupted)
			}
			spans := c.Spans(4)
			cutSpans = append(cutSpans, spans)

			var failed int32
			journaled := 0
			payloads, err := coord.RunFleet(ctx, coord.FleetOptions{
				Spec: spec, Workers: fc.workers, Spans: spans,
				Local: func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
					payload, err := harness.ShardPayload(ctx, spec, shard, harness.Options{})
					if err != nil {
						return nil, err
					}
					if fc.sabot && atomic.CompareAndSwapInt32(&failed, 0, 1) {
						return nil, errors.New("worker forcibly failed mid-shard (injected)")
					}
					return payload, nil
				},
				OnResult: func(shard int, payload []byte) error {
					p := journalPartial(t, j, c.PlanFP, payload)
					journaled += p.Hi - p.Lo
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if fc.sabot && atomic.LoadInt32(&failed) != 1 {
				t.Fatal("the fault was never injected")
			}
			if journaled+interrupted != c.Total {
				t.Errorf("journaled %d + interrupted %d trials != plan total %d — a shard was dropped or double-journaled",
					journaled, interrupted, c.Total)
			}

			parts := append([]*harness.PartialResult(nil), c.Parts...)
			for _, payload := range payloads {
				p, err := harness.DecodePartial(bytes.NewReader(payload))
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, p)
			}
			merged, err := harness.NewRunner().MergeCampaign(spec, parts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(direct, merged) {
				t.Error("coordinated resume merged result differs from the uninterrupted run")
			}

			// The journal now covers the whole plan: a further resume
			// replays everything and re-runs nothing.
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, rp2, err := journal.Open(dir, fp)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			c2, err := harness.NewRunner().ResumeCampaign(spec, rp2)
			if err != nil {
				t.Fatal(err)
			}
			if c2.Done() != c2.Total || len(c2.Gaps) != 0 {
				t.Errorf("resumed journal covers %d of %d trials with %d gaps, want complete",
					c2.Done(), c2.Total, len(c2.Gaps))
			}
		})
	}
	if len(cutSpans) == 2 && !reflect.DeepEqual(cutSpans[0], cutSpans[1]) {
		t.Errorf("re-cut span plan differs across fleets:\n1 worker: %v\n2 workers: %v", cutSpans[0], cutSpans[1])
	}
}

// TestCoordinatorSpanValidation: explicit span configs are validated at
// New — mismatched Shards counts and non-explicit spans are refused.
func TestCoordinatorSpanValidation(t *testing.T) {
	spawn := func(int) (coord.Worker, error) { return coord.Func(okWorker), nil }
	cases := []struct {
		name string
		cfg  coord.Config
		want string
	}{
		{"shards-vs-spans mismatch",
			coord.Config{Workers: 1, Shards: 3, Spans: []harness.ShardSpec{harness.SpanShard(0, 5)}, Spawn: spawn},
			"3 shards but 1 explicit spans"},
		{"fractional span rejected",
			coord.Config{Workers: 1, Spans: []harness.ShardSpec{{Index: 0, Count: 2}}, Spawn: spawn},
			"explicit [lo,hi) trial spans only"},
		{"invalid span rejected",
			coord.Config{Workers: 1, Spans: []harness.ShardSpec{harness.SpanShard(5, 5)}, Spawn: spawn},
			"invalid explicit trial span"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := coord.New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New(%+v) err = %v, want mention of %q", tc.cfg, err, tc.want)
			}
		})
	}

	// Fewer spans than workers is legal (a nearly complete journal).
	co, err := coord.New(coord.Config{Workers: 4,
		Spans: []harness.ShardSpec{harness.SpanShard(2, 7)}, Spawn: spawn})
	if err != nil {
		t.Fatalf("1 span for 4 workers must be legal on explicit spans: %v", err)
	}
	if _, err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFleetLeasesExplicitSpans: with Spans set, workers receive exactly
// the configured spans (not fractional cuts) and payloads come back in
// span order.
func TestFleetLeasesExplicitSpans(t *testing.T) {
	spans := []harness.ShardSpec{
		harness.SpanShard(0, 3), harness.SpanShard(3, 4), harness.SpanShard(4, 9),
	}
	var onResults int32
	payloads, err := coord.RunFleet(context.Background(), coord.FleetOptions{
		Workers: 2, Spans: spans,
		Local: func(_ context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) {
			if !s.Explicit() {
				return nil, errors.New("fractional assignment under explicit spans")
			}
			return json.Marshal(s)
		},
		OnResult: func(int, []byte) error { atomic.AddInt32(&onResults, 1); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&onResults); got != int32(len(spans)) {
		t.Errorf("OnResult fired %d times for %d spans", got, len(spans))
	}
	for i, p := range payloads {
		var got harness.ShardSpec
		if err := json.Unmarshal(p, &got); err != nil {
			t.Fatal(err)
		}
		if got != spans[i] {
			t.Errorf("payload %d ran span %v, want %v", i, got, spans[i])
		}
	}
}

// TestFleetOnResultErrorAborts: a failing OnResult sink (a journal that
// cannot make the payload durable) aborts the run with its error.
func TestFleetOnResultErrorAborts(t *testing.T) {
	sinkErr := errors.New("disk full (injected)")
	_, err := coord.RunFleet(context.Background(), coord.FleetOptions{
		Workers: 1, Spans: []harness.ShardSpec{harness.SpanShard(0, 2)},
		Local:    func(_ context.Context, _ harness.Spec, s harness.ShardSpec) ([]byte, error) { return json.Marshal(s) },
		OnResult: func(int, []byte) error { return sinkErr },
	})
	if !errors.Is(err, sinkErr) {
		t.Errorf("fleet with failing result sink err = %v, want %v", err, sinkErr)
	}
}
