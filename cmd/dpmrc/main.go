// Command dpmrc is the DPMR "compiler" driver (§3.2 tool design): it takes
// a workload module, applies the DPMR transformation under a chosen
// configuration, and prints the transformed IR together with module
// statistics — the equivalent of the paper's LLVM-bitcode-to-bitcode tool
// chain (Figure 3.4) for this repository's IR.
//
// Usage:
//
//	dpmrc -workload mcf -design sds -diversity rearrange-heap
//	dpmrc -workload art -design mds -policy "static 10%" -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/harness"
	"dpmr/internal/ir"
	"dpmr/internal/opt"
	"dpmr/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpmrc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "mcf", "workload: art, bzip2, equake, mcf")
		inFile    = fs.String("in", "", "read the input module from a textual IR file instead of a workload")
		outFile   = fs.String("o", "", "write the transformed IR to a file (default stdout)")
		useDSA    = fs.Bool("dsa", false, "use the Chapter 5 DSA-refined pipeline (admits int↔pointer programs)")
		optimize  = fs.Bool("O", false, "run the post-transform optimizer (Figure 3.4 pipeline stage)")
		statsOnly = fs.Bool("stats", false, "print before/after statistics only")
	)
	// The -design/-diversity/-policy family is shared with dpmr-run, so
	// names, defaults, and error text cannot drift between the binaries.
	var vf harness.VariantFlags
	vf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	v, err := vf.Variant()
	if err != nil {
		return fail(stderr, err)
	}
	var src *ir.Module
	if *inFile != "" {
		text, err := os.ReadFile(*inFile)
		if err != nil {
			return runFail(stderr, err)
		}
		src, err = ir.Parse(string(text))
		if err != nil {
			return runFail(stderr, err)
		}
		if err := ir.Verify(src); err != nil {
			return runFail(stderr, err)
		}
	} else {
		w, err := workloads.ByName(*workload)
		if err != nil {
			return fail(stderr, err)
		}
		src = w.Build()
	}
	cfg := dpmr.Config{Design: v.Design, Diversity: v.Diversity, Policy: v.Policy}
	var dst *ir.Module
	if *useDSA {
		var res *dsa.Result
		dst, res, err = dsa.Transform(src, cfg)
		if err != nil {
			return runFail(stderr, err)
		}
		fmt.Fprintf(stderr, "%s; excluded sites: %v\n", res.Stats(), res.ExcludedSites())
	} else {
		dst, err = dpmr.Transform(src, cfg)
		if err != nil {
			return runFail(stderr, err)
		}
	}
	if *optimize {
		st := opt.Run(dst)
		fmt.Fprintf(stderr, "opt: folded %d, removed %d\n", st.Folded, st.Removed)
	}
	if *statsOnly {
		before, after := src.CollectStats(), dst.CollectStats()
		fmt.Fprintf(stdout, "%-12s %10s %10s\n", "", "before", "after")
		fmt.Fprintf(stdout, "%-12s %10d %10d\n", "functions", before.Funcs, after.Funcs)
		fmt.Fprintf(stdout, "%-12s %10d %10d\n", "blocks", before.Blocks, after.Blocks)
		fmt.Fprintf(stdout, "%-12s %10d %10d\n", "instrs", before.Instrs, after.Instrs)
		fmt.Fprintf(stdout, "%-12s %10d %10d\n", "heap sites", before.HeapSites, after.HeapSites)
		fmt.Fprintf(stdout, "%-12s %10d %10d\n", "loads", before.Loads, after.Loads)
		fmt.Fprintf(stdout, "%-12s %10d %10d\n", "stores", before.Stores, after.Stores)
		fmt.Fprintf(stdout, "%-12s %10d %10d\n", "asserts", before.Asserts, after.Asserts)
		return 0
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(dst.String()), 0o644); err != nil {
			return runFail(stderr, err)
		}
		return 0
	}
	fmt.Fprint(stdout, dst.String())
	return 0
}

// fail reports command-line misuse (unknown flags, workloads, designs,
// diversities, policies): exit 2. Failures of the run itself — input IR
// that does not read, parse, or verify; transform errors; output I/O —
// exit 1 via runFail, matching dpmr-exp and dpmr-run.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmrc:", err)
	return 2
}

func runFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmrc:", err)
	return 1
}
