// Command dpmrc is the DPMR "compiler" driver (§3.2 tool design): it takes
// a workload module, applies the DPMR transformation under a chosen
// configuration, and prints the transformed IR together with module
// statistics — the equivalent of the paper's LLVM-bitcode-to-bitcode tool
// chain (Figure 3.4) for this repository's IR.
//
// Usage:
//
//	dpmrc -workload mcf -design sds -diversity rearrange-heap
//	dpmrc -workload art -design mds -policy "static 10%" -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/ir"
	"dpmr/internal/opt"
	"dpmr/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload  = flag.String("workload", "mcf", "workload: art, bzip2, equake, mcf")
		inFile    = flag.String("in", "", "read the input module from a textual IR file instead of a workload")
		outFile   = flag.String("o", "", "write the transformed IR to a file (default stdout)")
		design    = flag.String("design", "sds", "DPMR design: sds or mds")
		diversity = flag.String("diversity", "no-diversity", "diversity transformation")
		policy    = flag.String("policy", "all loads", "state comparison policy")
		useDSA    = flag.Bool("dsa", false, "use the Chapter 5 DSA-refined pipeline (admits int↔pointer programs)")
		optimize  = flag.Bool("O", false, "run the post-transform optimizer (Figure 3.4 pipeline stage)")
		statsOnly = flag.Bool("stats", false, "print before/after statistics only")
	)
	flag.Parse()
	div, err := dpmr.DiversityByName(*diversity)
	if err != nil {
		return fail(err)
	}
	pol, err := dpmr.PolicyByName(*policy)
	if err != nil {
		return fail(err)
	}
	d := dpmr.SDS
	if *design == "mds" {
		d = dpmr.MDS
	}
	var src *ir.Module
	if *inFile != "" {
		text, err := os.ReadFile(*inFile)
		if err != nil {
			return fail(err)
		}
		src, err = ir.Parse(string(text))
		if err != nil {
			return fail(err)
		}
		if err := ir.Verify(src); err != nil {
			return fail(err)
		}
	} else {
		w, err := workloads.ByName(*workload)
		if err != nil {
			return fail(err)
		}
		src = w.Build()
	}
	cfg := dpmr.Config{Design: d, Diversity: div, Policy: pol}
	var dst *ir.Module
	if *useDSA {
		var res *dsa.Result
		dst, res, err = dsa.Transform(src, cfg)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "%s; excluded sites: %v\n", res.Stats(), res.ExcludedSites())
	} else {
		dst, err = dpmr.Transform(src, cfg)
		if err != nil {
			return fail(err)
		}
	}
	if *optimize {
		st := opt.Run(dst)
		fmt.Fprintf(os.Stderr, "opt: folded %d, removed %d\n", st.Folded, st.Removed)
	}
	if *statsOnly {
		before, after := src.CollectStats(), dst.CollectStats()
		fmt.Printf("%-12s %10s %10s\n", "", "before", "after")
		fmt.Printf("%-12s %10d %10d\n", "functions", before.Funcs, after.Funcs)
		fmt.Printf("%-12s %10d %10d\n", "blocks", before.Blocks, after.Blocks)
		fmt.Printf("%-12s %10d %10d\n", "instrs", before.Instrs, after.Instrs)
		fmt.Printf("%-12s %10d %10d\n", "heap sites", before.HeapSites, after.HeapSites)
		fmt.Printf("%-12s %10d %10d\n", "loads", before.Loads, after.Loads)
		fmt.Printf("%-12s %10d %10d\n", "stores", before.Stores, after.Stores)
		fmt.Printf("%-12s %10d %10d\n", "asserts", before.Asserts, after.Asserts)
		return 0
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(dst.String()), 0o644); err != nil {
			return fail(err)
		}
		return 0
	}
	fmt.Print(dst.String())
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "dpmrc:", err)
	return 2
}
