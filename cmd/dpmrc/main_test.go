package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagValidation is the table-driven flag/validation contract of
// the dpmrc CLI, matching dpmr-exp and dpmr-run: command-line misuse
// exits 2, failures of the run itself exit 1, each with a diagnostic
// naming the problem.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"unknown workload", []string{"-workload", "nope"}, 2, "unknown workload"},
		{"unknown design", []string{"-design", "tmr"}, 2, "unknown design"},
		{"unknown diversity", []string{"-diversity", "scramble-everything"}, 2, "diversity"},
		{"unknown policy", []string{"-policy", "sometimes"}, 2, "policy"},
		{"missing input file", []string{"-in", "/nonexistent/mod.ir"}, 1, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestRunRejectsUnparsableInput: an -in file that is not valid IR is a
// run failure (exit 1), not usage.
func TestRunRejectsUnparsableInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ir")
	if err := os.WriteFile(path, []byte("this is not IR {"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-in", path}, &stdout, &stderr); code != 1 {
		t.Errorf("run(-in bad.ir) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "dpmrc:") {
		t.Errorf("stderr %q carries no dpmrc diagnostic", stderr.String())
	}
}

// TestRunStats: the happy -stats path prints the before/after table to
// stdout and exits 0.
func TestRunStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "mcf", "-diversity", "rearrange-heap", "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-stats) = %d, stderr: %s", code, stderr.String())
	}
	for _, col := range []string{"functions", "heap sites", "loads", "asserts"} {
		if !strings.Contains(stdout.String(), col) {
			t.Errorf("-stats output missing %q:\n%s", col, stdout.String())
		}
	}
}

// TestRunWritesOutputFile: -o writes the transformed IR (and only run
// failures touch the exit code).
func TestRunWritesOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.ir")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "art", "-o", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-o) = %d, stderr: %s", code, stderr.String())
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("no transformed IR written: %v", err)
	}
	// An unwritable output path is a run failure.
	stderr.Reset()
	if code := run([]string{"-workload", "art", "-o", "/nonexistent/dir/out.ir"}, &stdout, &stderr); code != 1 {
		t.Errorf("run(-o unwritable) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}
