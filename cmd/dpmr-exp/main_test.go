package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagValidation is the table-driven flag/validation contract of
// the dpmr-exp CLI: every bad combination exits nonzero with a
// diagnostic naming the problem, without starting a campaign.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"no experiment", []string{}, 2, "Usage"},
		{"unknown experiment", []string{"-exp", "fig9.9"}, 1, "unknown experiment"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"bad shard syntax", []string{"-exp", "fig3.7", "-shard", "three"}, 2, "want i/N"},
		{"shard index past count", []string{"-exp", "fig3.7", "-shard", "3/3"}, 2, "out of range"},
		{"negative shard index", []string{"-exp", "fig3.7", "-shard", "-1/3"}, 2, "out of range"},
		{"zero shard count", []string{"-exp", "fig3.7", "-shard", "0/0"}, 2, "at least 1"},
		{"shard without exp", []string{"-shard", "0/3"}, 2, "-shard requires"},
		{"shard of all", []string{"-exp", "all", "-shard", "0/3"}, 2, "-shard requires"},
		{"out without shard", []string{"-exp", "fig3.7", "-out", "x.json"}, 2, "-out requires -shard"},
		{"shard of overhead experiment", []string{"-exp", "fig3.10", "-quick", "-shard", "0/2"}, 1, "only injection campaigns shard"},
		{"merge without files", []string{"-merge"}, 2, "-merge needs"},
		{"merge with shard", []string{"-merge", "-shard", "0/2", "x.json"}, 2, "mutually exclusive"},
		{"merge missing file", []string{"-merge", "/nonexistent/p.json"}, 1, "no such file"},
		{"negative parallel", []string{"-exp", "fig3.7", "-quick", "-parallel", "-2"}, 1, "at least 1 worker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantErr)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig3.7") || !strings.Contains(stdout.String(), "tab4.6") {
		t.Errorf("-list output incomplete:\n%s", stdout.String())
	}
}

// TestShardMergeEndToEnd drives the real CLI path: two shards to files,
// merged, against the unsharded report — byte for byte.
func TestShardMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var unsharded, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3.7", "-quick"}, &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}
	files := make([]string, 2)
	for i := range files {
		files[i] = filepath.Join(dir, "part"+string(rune('0'+i))+".json")
		var stdout bytes.Buffer
		stderr.Reset()
		code := run([]string{"-exp", "fig3.7", "-quick", "-shard", string(rune('0'+i)) + "/2", "-out", files[i]}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("shard %d failed: %s", i, stderr.String())
		}
		if fi, err := os.Stat(files[i]); err != nil || fi.Size() == 0 {
			t.Fatalf("shard %d wrote no partial: %v", i, err)
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	// Out-of-order merge, experiment id taken from the partials.
	if code := run([]string{"-merge", "-quick", files[1], files[0]}, &merged, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), merged.Bytes()) {
		t.Errorf("merged report differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded.String(), merged.String())
	}
	// Duplicated shard must be rejected (a run failure, exit 1 — the
	// command line itself was fine).
	stderr.Reset()
	if code := run([]string{"-merge", "-quick", files[0], files[0]}, &bytes.Buffer{}, &stderr); code != 1 {
		t.Errorf("duplicate shard merge exited %d, want 1 (stderr: %s)", code, stderr.String())
	}
	// Missing shard must be rejected with the range named.
	stderr.Reset()
	if code := run([]string{"-merge", "-quick", files[1]}, &bytes.Buffer{}, &stderr); code != 1 || !strings.Contains(stderr.String(), "missing trials") {
		t.Errorf("missing shard merge exited %d, stderr %q", code, stderr.String())
	}
}
