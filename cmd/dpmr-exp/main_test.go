package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	coordnet "dpmr/internal/coord/net"
)

// noStdin stands in for an unused worker-protocol stream.
func noStdin() *strings.Reader { return strings.NewReader("") }

func runCLI(args []string, stdin *strings.Reader, stdout, stderr *bytes.Buffer) int {
	return run(context.Background(), args, stdin, stdout, stderr)
}

// TestRunFlagValidation is the table-driven flag/validation contract of
// the dpmr-exp CLI: every bad combination exits nonzero with a
// diagnostic naming the problem, without starting a campaign.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"no experiment", []string{}, 2, "Usage"},
		{"unknown experiment", []string{"-exp", "fig9.9"}, 1, "unknown experiment"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"bad shard syntax", []string{"-exp", "fig3.7", "-shard", "three"}, 2, "want i/N"},
		{"shard index past count", []string{"-exp", "fig3.7", "-shard", "3/3"}, 2, "out of range"},
		{"negative shard index", []string{"-exp", "fig3.7", "-shard", "-1/3"}, 2, "out of range"},
		{"zero shard count", []string{"-exp", "fig3.7", "-shard", "0/0"}, 2, "at least 1"},
		{"shard without exp", []string{"-shard", "0/3"}, 2, "-shard requires"},
		{"shard of all", []string{"-exp", "all", "-shard", "0/3"}, 2, "-shard requires"},
		{"out without shard", []string{"-exp", "fig3.7", "-out", "x.json"}, 2, "-out requires -shard"},
		{"merge without files", []string{"-merge"}, 2, "-merge needs"},
		{"merge with shard", []string{"-merge", "-shard", "0/2", "x.json"}, 2, "mutually exclusive"},
		{"merge missing file", []string{"-merge", "/nonexistent/p.json"}, 1, "no such file"},
		{"merge empty glob", []string{"-merge", "/nonexistent/part*.json"}, 2, "no partials match"},
		{"negative parallel", []string{"-exp", "fig3.7", "-quick", "-parallel", "-2"}, 1, "at least 1 worker"},
		{"coord without exp", []string{"-coord", "2"}, 2, "-coord requires"},
		{"coord of all", []string{"-exp", "all", "-coord", "2"}, 2, "-coord requires"},
		{"negative coord", []string{"-exp", "fig3.7", "-coord", "-1"}, 2, "at least 1 worker"},
		{"coord with shard", []string{"-exp", "fig3.7", "-coord", "2", "-shard", "0/2"}, 2, "mutually exclusive"},
		{"coord with merge", []string{"-exp", "fig3.7", "-coord", "2", "-merge", "x.json"}, 2, "mutually exclusive"},
		{"coord with worker", []string{"-exp", "fig3.7", "-coord", "2", "-worker"}, 2, "mutually exclusive"},
		{"coord shards below workers", []string{"-exp", "fig3.7", "-coord", "4", "-coord-shards", "2"}, 2, "at least as fine"},
		{"coord-shards without coord", []string{"-exp", "fig3.7", "-coord-shards", "4"}, 2, "-coord-shards requires -coord"},
		{"coord-spawn without coord", []string{"-exp", "fig3.7", "-coord-spawn"}, 2, "-coord-spawn requires -coord"},
		{"coord-lease without coord", []string{"-exp", "fig3.7", "-coord-lease", "30s"}, 2, "-coord-lease requires -coord"},
		{"negative coord lease", []string{"-exp", "fig3.7", "-coord", "2", "-coord-lease", "-5s"}, 2, "must be positive"},
		{"zero coord lease", []string{"-exp", "fig3.7", "-coord", "2", "-coord-lease", "0"}, 2, "must be positive"},
		{"chaos without spawn", []string{"-exp", "fig3.7", "-coord", "2", "-coord-chaos", "1"}, 2, "-coord-chaos requires -coord-spawn"},
		{"chaos without coord", []string{"-exp", "fig3.7", "-coord-chaos", "1"}, 2, "-coord-chaos requires -coord-spawn"},
		{"spec missing file", []string{"-spec", "/nonexistent/spec.json"}, 2, "no such file"},
		{"spec with exp", []string{"-spec", "/nonexistent/spec.json", "-exp", "fig3.7"}, 2, "mutually exclusive"},
		{"spec with quick", []string{"-spec", "/nonexistent/spec.json", "-quick"}, 2, "mutually exclusive"},
		{"spec with runs", []string{"-spec", "/nonexistent/spec.json", "-runs", "3"}, 2, "mutually exclusive"},
		{"spec with worker", []string{"-spec", "/nonexistent/spec.json", "-worker"}, 2, "mutually exclusive"},
		{"remote with coord", []string{"-exp", "fig3.7", "-remote", "127.0.0.1:9", "-coord", "2"}, 2, "mutually exclusive"},
		{"remote with shard", []string{"-exp", "fig3.7", "-remote", "127.0.0.1:9", "-shard", "0/2"}, 2, "mutually exclusive"},
		{"remote with merge", []string{"-remote", "127.0.0.1:9", "-merge", "x.json"}, 2, "mutually exclusive"},
		{"remote with worker", []string{"-remote", "127.0.0.1:9", "-worker"}, 2, "mutually exclusive"},
		{"remote of all", []string{"-exp", "all", "-remote", "127.0.0.1:9"}, 2, "-remote requires a single experiment"},
		{"remote with journal", []string{"-exp", "fig3.7", "-remote", "127.0.0.1:9", "-journal", "j"}, 2, "-journal is incompatible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := runCLI(tc.args, noStdin(), &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantErr)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runCLI([]string{"-list"}, noStdin(), &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig3.7") || !strings.Contains(stdout.String(), "tab4.6") {
		t.Errorf("-list output incomplete:\n%s", stdout.String())
	}
}

// TestShardMergeEndToEnd drives the real CLI path: two shards to files,
// merged, against the unsharded report — byte for byte. It also covers
// the -merge glob and directory forms introduced for many-shard runs.
func TestShardMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var unsharded, stderr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.7", "-quick"}, noStdin(), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}
	files := make([]string, 2)
	for i := range files {
		files[i] = filepath.Join(dir, "part"+string(rune('0'+i))+".json")
		var stdout bytes.Buffer
		stderr.Reset()
		code := runCLI([]string{"-exp", "fig3.7", "-quick", "-shard", string(rune('0'+i)) + "/2", "-out", files[i]}, noStdin(), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("shard %d failed: %s", i, stderr.String())
		}
		if fi, err := os.Stat(files[i]); err != nil || fi.Size() == 0 {
			t.Fatalf("shard %d wrote no partial: %v", i, err)
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	// Out-of-order merge, experiment id taken from the partials.
	if code := runCLI([]string{"-merge", "-quick", files[1], files[0]}, noStdin(), &merged, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), merged.Bytes()) {
		t.Errorf("merged report differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded.String(), merged.String())
	}
	// The same merge via a glob pattern and via the directory, without
	// enumerating files by hand.
	for _, arg := range []string{filepath.Join(dir, "part*.json"), dir} {
		var globbed bytes.Buffer
		stderr.Reset()
		if code := runCLI([]string{"-merge", "-quick", arg}, noStdin(), &globbed, &stderr); code != 0 {
			t.Fatalf("merge %q failed: %s", arg, stderr.String())
		}
		if !bytes.Equal(unsharded.Bytes(), globbed.Bytes()) {
			t.Errorf("merge %q differs from unsharded", arg)
		}
	}
	// A directory holding no partials is named, not silently merged.
	stderr.Reset()
	if code := runCLI([]string{"-merge", "-quick", t.TempDir()}, noStdin(), &bytes.Buffer{}, &stderr); code != 2 || !strings.Contains(stderr.String(), "no *.json partials") {
		t.Errorf("empty-directory merge exited %d, stderr %q", code, stderr.String())
	}
	// Duplicated shard must be rejected (a run failure, exit 1 — the
	// command line itself was fine).
	stderr.Reset()
	if code := runCLI([]string{"-merge", "-quick", files[0], files[0]}, noStdin(), &bytes.Buffer{}, &stderr); code != 1 {
		t.Errorf("duplicate shard merge exited %d, want 1 (stderr: %s)", code, stderr.String())
	}
	// Missing shard must be rejected with the range named.
	stderr.Reset()
	if code := runCLI([]string{"-merge", "-quick", files[1]}, noStdin(), &bytes.Buffer{}, &stderr); code != 1 || !strings.Contains(stderr.String(), "missing trials") {
		t.Errorf("missing shard merge exited %d, stderr %q", code, stderr.String())
	}
}

// TestShardedOverheadEndToEnd: overhead experiments shard like
// campaigns — two shards of fig3.16 merge to the unsharded bytes.
func TestShardedOverheadEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var unsharded, stderr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.16", "-quick"}, noStdin(), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}
	for i := 0; i < 2; i++ {
		f := filepath.Join(dir, "ov"+string(rune('0'+i))+".json")
		stderr.Reset()
		if code := runCLI([]string{"-exp", "fig3.16", "-quick", "-shard", string(rune('0'+i)) + "/2", "-out", f}, noStdin(), &bytes.Buffer{}, &stderr); code != 0 {
			t.Fatalf("overhead shard %d failed: %s", i, stderr.String())
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	if code := runCLI([]string{"-merge", "-quick", dir}, noStdin(), &merged, &stderr); code != 0 {
		t.Fatalf("overhead merge failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), merged.Bytes()) {
		t.Errorf("merged fig3.16 differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded.String(), merged.String())
	}
}

// TestCoordinatorEndToEnd runs the experiment under the in-process
// coordinator fleet: the merged report must be byte-identical to the
// plain unsharded run.
func TestCoordinatorEndToEnd(t *testing.T) {
	var unsharded, stderr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.7", "-quick"}, noStdin(), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}
	var coordinated bytes.Buffer
	stderr.Reset()
	if code := runCLI([]string{"-exp", "fig3.7", "-quick", "-coord", "3"}, noStdin(), &coordinated, &stderr); code != 0 {
		t.Fatalf("coordinated run failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), coordinated.Bytes()) {
		t.Errorf("coordinated report differs from unsharded:\n--- unsharded ---\n%s\n--- coordinated ---\n%s",
			unsharded.String(), coordinated.String())
	}
}

// TestRemoteEndToEnd submits the experiment to an in-process dpmrd
// campaign service over a real loopback socket; the locally merged
// report must be byte-identical to the plain unsharded run.
func TestRemoteEndToEnd(t *testing.T) {
	var unsharded, stderr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.7", "-quick"}, noStdin(), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}

	srv := coordnet.NewServer(coordnet.ServerConfig{LocalWorkers: 2})
	ln, err := coordnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var remote bytes.Buffer
	stderr.Reset()
	if code := runCLI([]string{"-exp", "fig3.7", "-quick", "-remote", ln.Addr().String()}, noStdin(), &remote, &stderr); code != 0 {
		t.Fatalf("remote run failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), remote.Bytes()) {
		t.Errorf("remote report differs from unsharded:\n--- unsharded ---\n%s\n--- remote ---\n%s",
			unsharded.String(), remote.String())
	}
}

// TestSpecFileEndToEnd is the -spec round trip at the CLI surface:
// -dump-spec writes the canonical JSON of the flag-described experiment,
// and running that file back produces a byte-identical report with no
// declarative flags on the command line at all.
func TestSpecFileEndToEnd(t *testing.T) {
	var specJSON, stderr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.16", "-quick", "-dump-spec"}, noStdin(), &specJSON, &stderr); code != 0 {
		t.Fatalf("-dump-spec failed: %s", stderr.String())
	}
	if !strings.Contains(specJSON.String(), `"kind":"experiment"`) {
		t.Fatalf("-dump-spec wrote no spec: %s", specJSON.String())
	}
	path := filepath.Join(t.TempDir(), "fig3.16.json")
	if err := os.WriteFile(path, specJSON.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var flagDriven bytes.Buffer
	stderr.Reset()
	if code := runCLI([]string{"-exp", "fig3.16", "-quick"}, noStdin(), &flagDriven, &stderr); code != 0 {
		t.Fatalf("flag-driven run failed: %s", stderr.String())
	}
	var specDriven bytes.Buffer
	stderr.Reset()
	if code := runCLI([]string{"-spec", path}, noStdin(), &specDriven, &stderr); code != 0 {
		t.Fatalf("spec-driven run failed: %s", stderr.String())
	}
	if !bytes.Equal(flagDriven.Bytes(), specDriven.Bytes()) {
		t.Errorf("-spec run differs from the flag-driven run:\n--- flags ---\n%s\n--- spec ---\n%s",
			flagDriven.String(), specDriven.String())
	}
}

// TestProgressGoesToStderr: -progress must never pollute the stdout
// report stream — stdout stays byte-identical with and without it, and
// the progress lines land on stderr.
func TestProgressGoesToStderr(t *testing.T) {
	var quiet, stderr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.16", "-quick"}, noStdin(), &quiet, &stderr); code != 0 {
		t.Fatalf("run failed: %s", stderr.String())
	}
	var noisy, progressErr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.16", "-quick", "-progress"}, noStdin(), &noisy, &progressErr); code != 0 {
		t.Fatalf("-progress run failed: %s", progressErr.String())
	}
	if !bytes.Equal(quiet.Bytes(), noisy.Bytes()) {
		t.Errorf("-progress polluted stdout:\n--- without ---\n%s\n--- with ---\n%s", quiet.String(), noisy.String())
	}
	if !strings.Contains(progressErr.String(), "trials") {
		t.Errorf("-progress wrote nothing to stderr: %q", progressErr.String())
	}
	// The same purity holds for a shard writing its partial to stdout
	// (-out -): the pipeline output must decode as pure JSON.
	var shardOut, shardErr bytes.Buffer
	if code := runCLI([]string{"-exp", "fig3.16", "-quick", "-shard", "0/2", "-out", "-", "-progress"}, noStdin(), &shardOut, &shardErr); code != 0 {
		t.Fatalf("shard -out - failed: %s", shardErr.String())
	}
	if !strings.HasPrefix(shardOut.String(), "{") || !strings.Contains(shardOut.String(), `"fingerprint"`) {
		t.Errorf("shard stdout is not a pure JSON partial: %q", shardOut.String())
	}
}

// TestWorkerModeServes speaks the JSON-lines protocol to -worker mode
// directly: the assignments carry the Spec (argv holds no experiment
// description), and each completion embeds the shard's partial.
func TestWorkerModeServes(t *testing.T) {
	spec := `{"kind":"experiment","exp":"fig3.7","quick":true}`
	stdin := strings.NewReader(
		`{"spec":` + spec + `,"shard":{"index":0,"count":2}}` + "\n" +
			`{"spec":` + spec + `,"shard":{"index":1,"count":2}}` + "\n")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-worker"}, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("worker mode exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if got := strings.Count(out, `"payload"`); got != 2 {
		t.Errorf("want 2 completions with payloads, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, `"fingerprint"`) {
		t.Errorf("worker completion carries no partial payload:\n%s", out)
	}
	if strings.Contains(out, `"error"`) {
		t.Errorf("worker reported an error:\n%s", out)
	}
	// A bad spec in an assignment is an in-band shard error, not a dead
	// worker: the process answers and stays in the loop.
	stdin = strings.NewReader(`{"spec":{"kind":"banana"},"shard":{"index":0,"count":1}}` + "\n")
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-worker"}, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("worker mode exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"error"`) {
		t.Errorf("bad spec not answered in-band:\n%s", stdout.String())
	}
}

// TestSpecKindMismatchNamed: a campaign-kind spec fed to dpmr-exp is a
// usage error naming both kinds, not a bare usage dump.
func TestSpecKindMismatchNamed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.json")
	spec := `{"kind":"campaign","workloads":["art"],"variants":[{}],"inject":"immediate-free"}` + "\n"
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-spec", path},
		{"-spec", path, "-shard", "0/2"},
	} {
		var stdout, stderr bytes.Buffer
		if code := runCLI(args, noStdin(), &stdout, &stderr); code != 2 || !strings.Contains(stderr.String(), `got kind "campaign"`) {
			t.Errorf("run(%v) = %d, stderr %q; want 2 naming the kind", args, code, stderr.String())
		}
	}
}

// TestJournalFlagValidation is the dpmr-exp -journal/-resume flag
// contract: bad combinations are named exit-2 usage errors.
func TestJournalFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"resume without journal", []string{"-exp", "fig3.7", "-resume"}, "-resume requires -journal"},
		{"journal with shard", []string{"-exp", "fig3.7", "-journal", "j", "-shard", "0/2"}, "-journal is incompatible"},
		{"journal with merge", []string{"-journal", "j", "-merge", "x.json"}, "-journal is incompatible"},
		{"journal with coord", []string{"-exp", "fig3.7", "-journal", "j", "-coord", "2"}, "-journal is incompatible"},
		{"journal with worker", []string{"-journal", "j", "-worker"}, "-journal is incompatible"},
		{"journal of all", []string{"-exp", "all", "-journal", "j"}, "-journal requires a single experiment"},
		{"journal without exp", []string{"-journal", "j"}, "-journal requires a single experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := runCLI(tc.args, noStdin(), &stdout, &stderr); code != 2 {
				t.Fatalf("run(%v) = %d, want 2 (stderr: %s)", tc.args, code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestJournalEndToEnd: a journaled experiment — one campaign-shaped
// (fig3.7) and one overhead-shaped (fig3.16) — reproduces the direct
// report byte for byte, leaves report.txt identical to stdout, refuses
// a changed spec, and a resume of the complete journal executes nothing.
func TestJournalEndToEnd(t *testing.T) {
	for _, exp := range []string{"fig3.7", "fig3.16"} {
		t.Run(exp, func(t *testing.T) {
			base := []string{"-exp", exp, "-quick"}
			var direct, directErr bytes.Buffer
			if code := runCLI(base, noStdin(), &direct, &directErr); code != 0 {
				t.Fatalf("direct run failed: %s", directErr.String())
			}

			dir := t.TempDir()
			var journaled, jerr bytes.Buffer
			if code := runCLI(append(base, "-journal", dir), noStdin(), &journaled, &jerr); code != 0 {
				t.Fatalf("journaled run failed: %s", jerr.String())
			}
			if !bytes.Equal(direct.Bytes(), journaled.Bytes()) {
				t.Errorf("journaled report differs from direct:\n--- direct ---\n%s\n--- journaled ---\n%s",
					direct.String(), journaled.String())
			}
			report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(report, journaled.Bytes()) {
				t.Errorf("final report.txt differs from stdout:\n--- report.txt ---\n%s\n--- stdout ---\n%s",
					report, journaled.String())
			}

			// The journal is bound to the spec: dropping -quick changes the
			// fingerprint and must be refused, not silently re-run.
			var stderr bytes.Buffer
			if code := runCLI([]string{"-exp", exp, "-journal", dir, "-resume"}, noStdin(), &bytes.Buffer{}, &stderr); code != 2 ||
				!strings.Contains(stderr.String(), "identical to resume") {
				t.Errorf("changed-spec resume exited %d, stderr %q", code, stderr.String())
			}

			var resumed, rerr bytes.Buffer
			if code := runCLI(append(base, "-journal", dir, "-resume"), noStdin(), &resumed, &rerr); code != 0 {
				t.Fatalf("resume of complete journal failed: %s", rerr.String())
			}
			if !bytes.Equal(direct.Bytes(), resumed.Bytes()) {
				t.Errorf("resumed report differs from direct")
			}
			if !strings.Contains(rerr.String(), "executed 0") {
				t.Errorf("resume of a complete journal re-executed trials: %q", rerr.String())
			}
		})
	}
}
