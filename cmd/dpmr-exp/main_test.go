package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// noStdin stands in for an unused worker-protocol stream.
func noStdin() *strings.Reader { return strings.NewReader("") }

// TestRunFlagValidation is the table-driven flag/validation contract of
// the dpmr-exp CLI: every bad combination exits nonzero with a
// diagnostic naming the problem, without starting a campaign.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"no experiment", []string{}, 2, "Usage"},
		{"unknown experiment", []string{"-exp", "fig9.9"}, 1, "unknown experiment"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"bad shard syntax", []string{"-exp", "fig3.7", "-shard", "three"}, 2, "want i/N"},
		{"shard index past count", []string{"-exp", "fig3.7", "-shard", "3/3"}, 2, "out of range"},
		{"negative shard index", []string{"-exp", "fig3.7", "-shard", "-1/3"}, 2, "out of range"},
		{"zero shard count", []string{"-exp", "fig3.7", "-shard", "0/0"}, 2, "at least 1"},
		{"shard without exp", []string{"-shard", "0/3"}, 2, "-shard requires"},
		{"shard of all", []string{"-exp", "all", "-shard", "0/3"}, 2, "-shard requires"},
		{"out without shard", []string{"-exp", "fig3.7", "-out", "x.json"}, 2, "-out requires -shard"},
		{"merge without files", []string{"-merge"}, 2, "-merge needs"},
		{"merge with shard", []string{"-merge", "-shard", "0/2", "x.json"}, 2, "mutually exclusive"},
		{"merge missing file", []string{"-merge", "/nonexistent/p.json"}, 1, "no such file"},
		{"merge empty glob", []string{"-merge", "/nonexistent/part*.json"}, 2, "no partials match"},
		{"negative parallel", []string{"-exp", "fig3.7", "-quick", "-parallel", "-2"}, 1, "at least 1 worker"},
		{"coord without exp", []string{"-coord", "2"}, 2, "-coord requires"},
		{"coord of all", []string{"-exp", "all", "-coord", "2"}, 2, "-coord requires"},
		{"negative coord", []string{"-exp", "fig3.7", "-coord", "-1"}, 2, "at least 1 worker"},
		{"coord with shard", []string{"-exp", "fig3.7", "-coord", "2", "-shard", "0/2"}, 2, "mutually exclusive"},
		{"coord with merge", []string{"-exp", "fig3.7", "-coord", "2", "-merge", "x.json"}, 2, "mutually exclusive"},
		{"coord with worker", []string{"-exp", "fig3.7", "-coord", "2", "-worker"}, 2, "mutually exclusive"},
		{"coord shards below workers", []string{"-exp", "fig3.7", "-coord", "4", "-coord-shards", "2"}, 2, "at least as fine"},
		{"coord-shards without coord", []string{"-exp", "fig3.7", "-coord-shards", "4"}, 2, "-coord-shards requires -coord"},
		{"coord-spawn without coord", []string{"-exp", "fig3.7", "-coord-spawn"}, 2, "-coord-spawn requires -coord"},
		{"coord-lease without coord", []string{"-exp", "fig3.7", "-coord-lease", "30s"}, 2, "-coord-lease requires -coord"},
		{"negative coord lease", []string{"-exp", "fig3.7", "-coord", "2", "-coord-lease", "-5s"}, 2, "negative lease"},
		{"chaos without spawn", []string{"-exp", "fig3.7", "-coord", "2", "-coord-chaos", "1"}, 2, "-coord-chaos requires -coord-spawn"},
		{"worker without exp", []string{"-worker"}, 2, "-worker requires"},
		{"worker of all", []string{"-exp", "all", "-worker"}, 2, "-worker requires"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, noStdin(), &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantErr)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, noStdin(), &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig3.7") || !strings.Contains(stdout.String(), "tab4.6") {
		t.Errorf("-list output incomplete:\n%s", stdout.String())
	}
}

// TestShardMergeEndToEnd drives the real CLI path: two shards to files,
// merged, against the unsharded report — byte for byte. It also covers
// the -merge glob and directory forms introduced for many-shard runs.
func TestShardMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var unsharded, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3.7", "-quick"}, noStdin(), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}
	files := make([]string, 2)
	for i := range files {
		files[i] = filepath.Join(dir, "part"+string(rune('0'+i))+".json")
		var stdout bytes.Buffer
		stderr.Reset()
		code := run([]string{"-exp", "fig3.7", "-quick", "-shard", string(rune('0'+i)) + "/2", "-out", files[i]}, noStdin(), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("shard %d failed: %s", i, stderr.String())
		}
		if fi, err := os.Stat(files[i]); err != nil || fi.Size() == 0 {
			t.Fatalf("shard %d wrote no partial: %v", i, err)
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	// Out-of-order merge, experiment id taken from the partials.
	if code := run([]string{"-merge", "-quick", files[1], files[0]}, noStdin(), &merged, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), merged.Bytes()) {
		t.Errorf("merged report differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded.String(), merged.String())
	}
	// The same merge via a glob pattern and via the directory, without
	// enumerating files by hand.
	for _, arg := range []string{filepath.Join(dir, "part*.json"), dir} {
		var globbed bytes.Buffer
		stderr.Reset()
		if code := run([]string{"-merge", "-quick", arg}, noStdin(), &globbed, &stderr); code != 0 {
			t.Fatalf("merge %q failed: %s", arg, stderr.String())
		}
		if !bytes.Equal(unsharded.Bytes(), globbed.Bytes()) {
			t.Errorf("merge %q differs from unsharded", arg)
		}
	}
	// A directory holding no partials is named, not silently merged.
	stderr.Reset()
	if code := run([]string{"-merge", "-quick", t.TempDir()}, noStdin(), &bytes.Buffer{}, &stderr); code != 2 || !strings.Contains(stderr.String(), "no *.json partials") {
		t.Errorf("empty-directory merge exited %d, stderr %q", code, stderr.String())
	}
	// Duplicated shard must be rejected (a run failure, exit 1 — the
	// command line itself was fine).
	stderr.Reset()
	if code := run([]string{"-merge", "-quick", files[0], files[0]}, noStdin(), &bytes.Buffer{}, &stderr); code != 1 {
		t.Errorf("duplicate shard merge exited %d, want 1 (stderr: %s)", code, stderr.String())
	}
	// Missing shard must be rejected with the range named.
	stderr.Reset()
	if code := run([]string{"-merge", "-quick", files[1]}, noStdin(), &bytes.Buffer{}, &stderr); code != 1 || !strings.Contains(stderr.String(), "missing trials") {
		t.Errorf("missing shard merge exited %d, stderr %q", code, stderr.String())
	}
}

// TestShardedOverheadEndToEnd: overhead experiments now shard like
// campaigns — two shards of fig3.16 merge to the unsharded bytes.
func TestShardedOverheadEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var unsharded, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3.16", "-quick"}, noStdin(), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}
	for i := 0; i < 2; i++ {
		f := filepath.Join(dir, "ov"+string(rune('0'+i))+".json")
		stderr.Reset()
		if code := run([]string{"-exp", "fig3.16", "-quick", "-shard", string(rune('0'+i)) + "/2", "-out", f}, noStdin(), &bytes.Buffer{}, &stderr); code != 0 {
			t.Fatalf("overhead shard %d failed: %s", i, stderr.String())
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	if code := run([]string{"-merge", "-quick", dir}, noStdin(), &merged, &stderr); code != 0 {
		t.Fatalf("overhead merge failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), merged.Bytes()) {
		t.Errorf("merged fig3.16 differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded.String(), merged.String())
	}
}

// TestCoordinatorEndToEnd runs the experiment under the in-process
// coordinator fleet: the merged report must be byte-identical to the
// plain unsharded run.
func TestCoordinatorEndToEnd(t *testing.T) {
	var unsharded, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3.7", "-quick"}, noStdin(), &unsharded, &stderr); code != 0 {
		t.Fatalf("unsharded run failed: %s", stderr.String())
	}
	var coordinated bytes.Buffer
	stderr.Reset()
	if code := run([]string{"-exp", "fig3.7", "-quick", "-coord", "3"}, noStdin(), &coordinated, &stderr); code != 0 {
		t.Fatalf("coordinated run failed: %s", stderr.String())
	}
	if !bytes.Equal(unsharded.Bytes(), coordinated.Bytes()) {
		t.Errorf("coordinated report differs from unsharded:\n--- unsharded ---\n%s\n--- coordinated ---\n%s",
			unsharded.String(), coordinated.String())
	}
}

// TestWorkerModeServes speaks the JSON-lines protocol to -worker mode
// directly: two assignments in (the second reusing the first's warm
// module cache), two completions with embedded experiment partials out.
func TestWorkerModeServes(t *testing.T) {
	stdin := strings.NewReader(
		`{"shard":{"index":0,"count":2}}` + "\n" + `{"shard":{"index":1,"count":2}}` + "\n")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-worker", "-exp", "fig3.7", "-quick"}, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("worker mode exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if got := strings.Count(out, `"payload"`); got != 2 {
		t.Errorf("want 2 completions with payloads, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, `"fingerprint"`) {
		t.Errorf("worker completion carries no partial payload:\n%s", out)
	}
	if strings.Contains(out, `"error"`) {
		t.Errorf("worker reported an error:\n%s", out)
	}
}
