// Command dpmr-exp regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	dpmr-exp -exp fig3.10            # one table/figure
//	dpmr-exp -exp all                # the full evaluation
//	dpmr-exp -exp tab3.3 -quick      # reduced workloads/sites for a fast pass
//	dpmr-exp -list                   # list experiment ids
//
// Campaign-based experiments shard across processes: each shard runs a
// contiguous slice of the canonical trial plan and writes a partial
// result, and -merge reassembles a report byte-identical to an unsharded
// run (mismatched plans, duplicated shards, and missing trial ranges are
// rejected):
//
//	dpmr-exp -exp fig3.7 -shard 0/3 -out part0.json
//	dpmr-exp -exp fig3.7 -shard 1/3 -out part1.json
//	dpmr-exp -exp fig3.7 -shard 2/3 -out part2.json
//	dpmr-exp -merge part0.json part1.json part2.json
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpmr/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpmr-exp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "experiment id (fig3.6..fig4.14, tab3.3/3.4/4.5/4.6) or 'all'")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		quick    = fs.Bool("quick", false, "quick mode: fewer workloads, sites, runs")
		runs     = fs.Int("runs", 0, "runs per experiment tuple (default 2; 1 in quick mode)")
		maxSites = fs.Int("max-sites", 0, "cap injection sites per workload (0 = all)")
		parallel = fs.Int("parallel", 1, "campaign worker goroutines (output is identical at any count)")
		progress = fs.Bool("progress", false, "report per-trial campaign progress and module-cache residency on stderr")
		evict    = fs.Bool("evict", true, "release each module after its final trial (bounds peak cache residency)")
		shard    = fs.String("shard", "", "run campaign shard i/N and write a partial result (requires -exp, not 'all')")
		outPath  = fs.String("out", "", "partial-result output file with -shard (default stdout)")
		merge    = fs.Bool("merge", false, "merge partial-result files (the positional arguments) and render the report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *outPath != "" && *shard == "" {
		return fail(stderr, fmt.Errorf("-out requires -shard (merged and unsharded reports go to stdout)"))
	}

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	opts := harness.Options{Quick: *quick, Runs: *runs, MaxSites: *maxSites, Parallel: *parallel, Evict: *evict}
	if *progress {
		label := *exp
		if *merge {
			label = "merge"
		}
		opts.ProgressStats = func(done, total int, st harness.CacheStats) {
			fmt.Fprintf(stderr, "\r%s: %d/%d trials (%d modules resident, peak %d, %d evicted)",
				label, done, total, st.Resident, st.Peak, st.Evicted)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}

	switch {
	case *merge:
		if *shard != "" {
			return fail(stderr, fmt.Errorf("-merge and -shard are mutually exclusive"))
		}
		files := fs.Args()
		if len(files) == 0 {
			return fail(stderr, fmt.Errorf("-merge needs the partial-result files as arguments"))
		}
		readers := make([]io.Reader, len(files))
		for i, name := range files {
			f, err := os.Open(name)
			if err != nil {
				return runFail(stderr, err)
			}
			defer f.Close()
			readers[i] = f
		}
		if err := harness.GenerateMerged(*exp, stdout, readers, opts); err != nil {
			return runFail(stderr, err)
		}
		return 0
	case *shard != "":
		spec, err := harness.ParseShard(*shard)
		if err != nil {
			return fail(stderr, err)
		}
		if *exp == "" || *exp == "all" {
			return fail(stderr, fmt.Errorf("-shard requires a single campaign experiment via -exp"))
		}
		out := io.Writer(stdout)
		var f *os.File
		if *outPath != "" && *outPath != "-" {
			f, err = os.Create(*outPath)
			if err != nil {
				return runFail(stderr, err)
			}
			out = f
		}
		if err := harness.GenerateSharded(*exp, spec, out, opts); err != nil {
			if f != nil {
				f.Close()
			}
			return runFail(stderr, err)
		}
		// A close error (deferred flush, ENOSPC) would leave a truncated
		// partial behind a zero exit; surface it.
		if f != nil {
			if err := f.Close(); err != nil {
				return runFail(stderr, err)
			}
		}
		return 0
	}

	if *exp == "" {
		fs.Usage()
		return 2
	}
	var err error
	if *exp == "all" {
		err = harness.GenerateAll(stdout, opts)
	} else {
		err = harness.Generate(*exp, stdout, opts)
	}
	if err != nil {
		return runFail(stderr, err)
	}
	return 0
}

// fail reports command-line misuse (bad flags or flag combinations):
// exit 2. Failures of the run itself — unknown experiments, partial-file
// I/O, merge validation, campaign errors — exit 1 via runFail, in every
// mode (sharded, merged, or unsharded).
func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-exp:", err)
	return 2
}

func runFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-exp:", err)
	return 1
}
