// Command dpmr-exp regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	dpmr-exp -exp fig3.10            # one table/figure
//	dpmr-exp -exp all                # the full evaluation
//	dpmr-exp -exp tab3.3 -quick      # reduced workloads/sites for a fast pass
//	dpmr-exp -list                   # list experiment ids
//
// What to run and how to run it are separate surfaces. The declarative
// flags (-exp, -quick, -runs, -max-sites) assemble a harness.Spec — the
// serializable experiment description whose canonical JSON is the sole
// source of every plan fingerprint. -dump-spec prints that JSON, and
// -spec runs an experiment from such a file instead of the flags:
//
//	dpmr-exp -exp fig3.7 -quick -dump-spec > fig3.7.json
//	dpmr-exp -spec fig3.7.json       # byte-identical to the flag-driven run
//
// The remaining flags (-parallel, -evict, -compile, -progress, -shard,
// -coord…) only tune execution and can never change what runs, the
// plan, or its fingerprint. -progress writes to stderr, so report
// pipelines reading stdout stay clean.
//
// Every experiment shards across processes: each shard runs a contiguous
// slice of the canonical trial plan (injection campaigns and overhead
// measurements alike) and writes a partial result, and -merge reassembles
// a report byte-identical to an unsharded run (mismatched plans,
// duplicated shards, and missing trial ranges are rejected):
//
//	dpmr-exp -exp fig3.7 -shard 0/3 -out part0.json
//	dpmr-exp -exp fig3.7 -shard 1/3 -out part1.json
//	dpmr-exp -exp fig3.7 -shard 2/3 -out part2.json
//	dpmr-exp -merge part0.json part1.json part2.json
//
// -merge also takes directories and glob patterns ('parts/', 'part*.json'),
// so a 16-shard run merges without enumerating files by hand.
//
// With -coord the same sharding runs under a supervising coordinator
// instead of by hand: the plan is cut into -coord-shards slices, leased
// to a fleet of workers (in-process goroutines, or spawned
// `dpmr-exp -worker` processes with -coord-spawn), stragglers and
// crashed workers are retried, and the merged report — still
// byte-identical to an unsharded run — lands on stdout in one command.
// Each coord.Assignment carries the Spec over the wire, so a worker
// process's argv holds only execution policy:
//
//	dpmr-exp -exp fig3.7 -coord 8
//	dpmr-exp -exp tab3.3 -coord 4 -coord-spawn -coord-lease 5m
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"dpmr/internal/coord"
	coordnet "dpmr/internal/coord/net"
	"dpmr/internal/failpt"
	"dpmr/internal/harness"
	"dpmr/internal/journal"
	"dpmr/internal/prof"
)

func main() {
	// Interrupts cancel the context instead of killing the process: the
	// engine stops dispatching, drains in-flight trials, and exits
	// cleanly (a second interrupt kills outright).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	code := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpmr-exp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment id (fig3.6..fig4.14, tab3.3/3.4/4.5/4.6) or 'all'")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		quick      = fs.Bool("quick", false, "quick mode: fewer workloads, sites, runs")
		runs       = fs.Int("runs", 0, "runs per experiment tuple (default 2; 1 in quick mode)")
		maxSites   = fs.Int("max-sites", 0, "cap injection sites per workload (0 = all)")
		specFile   = fs.String("spec", "", "run the experiment described by this JSON spec file instead of the declarative flags")
		dumpSpec   = fs.Bool("dump-spec", false, "print the canonical JSON spec of the requested experiment and exit (the -spec file format)")
		parallel   = fs.Int("parallel", 1, "campaign worker goroutines (output is identical at any count)")
		progress   = fs.Bool("progress", false, "report per-trial campaign progress and module-cache residency on stderr")
		evict      = fs.Bool("evict", true, "release each module after its final trial (bounds peak cache residency)")
		shard      = fs.String("shard", "", "run shard i/N of the experiment and write a partial result (requires a single experiment)")
		outPath    = fs.String("out", "", "partial-result output file with -shard (default stdout)")
		merge      = fs.Bool("merge", false, "merge partial-result files, directories, or globs (the positional arguments) and render the report")
		compile    = fs.Bool("compile", true, "execute trials as compiled module bytecode; -compile=false forces the tree-walking reference interpreter (output is byte-identical, only speed differs)")
		precomp    = fs.Int("precompile", 0, "background AOT workers building upcoming modules ahead of the execution frontier (0 = off; output is byte-identical, only speed differs)")
		journalDir = fs.String("journal", "", "journal completed trial spans to this `dir` and write a progressive report there (requires a single experiment)")
		resumeJnl  = fs.Bool("resume", false, "resume the experiment from an existing -journal directory, re-running only the missing trials")
		remote     = fs.String("remote", "", "submit the experiment to the dpmrd campaign service at this `addr` (TCP host:port or Unix socket path) and merge its streamed shards")
	)
	var cf coord.CLIFlags
	cf.Register(fs, "experiment", "worker mode: serve shard assignments from stdin (JSON lines carrying the spec; normally spawned by a coordinator)")
	var pf prof.Flags
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if sched, err := failpt.ArmFromEnv(); err != nil {
		return fail(stderr, fmt.Errorf("%s: %w", failpt.EnvVar, err))
	} else if sched != "" {
		fmt.Fprintf(stderr, "dpmr-exp: failpoints armed from %s: %s\n", failpt.EnvVar, sched)
	}
	if *outPath != "" && *shard == "" {
		return fail(stderr, fmt.Errorf("-out requires -shard (merged and unsharded reports go to stdout)"))
	}

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	if cf.Worker && *specFile != "" {
		return fail(stderr, fmt.Errorf("-spec and -worker are mutually exclusive (assignments carry the spec)"))
	}
	// The declarative flags assemble the Spec; -spec replaces them with a
	// file (mixing the two is refused inside ParseSpecFlags).
	base := harness.Spec{Kind: harness.SpecExperiment, Exp: *exp, Quick: *quick, Runs: *runs, MaxSites: *maxSites}
	spec, err := harness.ParseSpecFlags(fs, *specFile, base, "exp", "quick", "runs", "max-sites")
	if err != nil {
		return fail(stderr, err)
	}
	if spec.Kind != harness.SpecExperiment {
		return fail(stderr, fmt.Errorf("-spec %s: dpmr-exp runs experiment specs, got kind %q (use dpmr-run for campaigns)", *specFile, spec.Kind))
	}
	if *dumpSpec {
		if err := spec.Encode(stdout); err != nil {
			return runFail(stderr, err)
		}
		return 0
	}
	opts := harness.Options{Parallel: *parallel, Evict: *evict, Reference: !*compile, Precompile: *precomp}
	if *progress {
		label := spec.Exp
		if *merge {
			label = "merge"
		}
		opts.Events = harness.RenderProgress(stderr, label)
	}

	// The five execution modes are mutually exclusive; name the clash
	// instead of silently preferring one.
	modes := 0
	for _, on := range []bool{*merge, *shard != "", cf.Enabled(), cf.Worker, *remote != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fail(stderr, fmt.Errorf("-merge, -shard, -coord, -worker, and -remote are mutually exclusive"))
	}
	if err := cf.Validate(fs); err != nil {
		return fail(stderr, err)
	}
	// Validate the mode-specific usage constraints before profiling
	// starts, so a usage error cannot truncate an existing profile file:
	// -cpuprofile is only created once the invocation is known-valid.
	var shardSpec harness.ShardSpec
	if *shard != "" {
		s, err := harness.ParseShard(*shard)
		if err != nil {
			return fail(stderr, err)
		}
		if spec.Exp == "" || spec.Exp == "all" {
			return fail(stderr, fmt.Errorf("-shard requires a single experiment via -exp or -spec"))
		}
		shardSpec = s
	}
	if cf.Enabled() && (spec.Exp == "" || spec.Exp == "all") {
		return fail(stderr, fmt.Errorf("-coord requires a single experiment via -exp or -spec"))
	}
	if *remote != "" && (spec.Exp == "" || spec.Exp == "all") {
		return fail(stderr, fmt.Errorf("-remote requires a single experiment via -exp or -spec"))
	}
	if *resumeJnl && *journalDir == "" {
		return fail(stderr, fmt.Errorf("-resume requires -journal (the directory holding the journal to continue)"))
	}
	if *journalDir != "" {
		if *merge || *shard != "" || cf.Enabled() || cf.Worker || *remote != "" {
			return fail(stderr, fmt.Errorf("-journal is incompatible with -merge, -shard, -coord, -worker, and -remote (a remote campaign journals on the daemon)"))
		}
		if spec.Exp == "" || spec.Exp == "all" {
			return fail(stderr, fmt.Errorf("-journal requires a single experiment via -exp or -spec"))
		}
	}
	if spec.Exp == "" && !*merge && !cf.Worker {
		fs.Usage()
		return 2
	}
	var mergeFiles []string
	if *merge {
		files, err := expandPartialArgs(fs.Args())
		if err != nil {
			return fail(stderr, err)
		}
		mergeFiles = files
	}
	profStop, perr := pf.Start()
	if perr != nil {
		// Profile-file I/O failure is a run failure (exit 1), not
		// command-line misuse.
		return runFail(stderr, perr)
	}
	defer func() {
		// Profile flushing failures can't change the exit code from a
		// defer; surface them loudly instead of dropping them.
		if err := profStop(); err != nil {
			fmt.Fprintln(stderr, "dpmr-exp:", err)
		}
	}()

	switch {
	case *merge:
		readers := make([]io.Reader, len(mergeFiles))
		for i, name := range mergeFiles {
			f, err := os.Open(name)
			if err != nil {
				return runFail(stderr, err)
			}
			defer f.Close()
			readers[i] = f
		}
		if err := harness.GenerateMerged(ctx, spec, stdout, readers, opts); err != nil {
			return runFail(stderr, err)
		}
		return 0
	case *shard != "":
		out := io.Writer(stdout)
		var f *os.File
		if *outPath != "" && *outPath != "-" {
			var err error
			f, err = os.Create(*outPath)
			if err != nil {
				return runFail(stderr, err)
			}
			out = f
		}
		err := runSession(ctx, spec, out, stderr, *progress,
			harness.WithParallel(*parallel), harness.WithEviction(*evict),
			harness.WithReference(!*compile), harness.WithPrecompile(*precomp),
			harness.WithShard(shardSpec))
		if err != nil {
			if f != nil {
				f.Close()
			}
			return runFail(stderr, err)
		}
		// A close error (deferred flush, ENOSPC) would leave a truncated
		// partial behind a zero exit; surface it.
		if f != nil {
			if err := f.Close(); err != nil {
				return runFail(stderr, err)
			}
		}
		return 0
	case cf.Worker:
		// One Runner for the worker's lifetime: shards of the same plan
		// leased to this worker reuse its module and golden caches. The
		// spec arrives with each assignment — argv carries none of it.
		workerOpts := opts
		workerOpts.Events = nil
		workerOpts.Runner = harness.NewRunner()
		err := coord.Serve(stdin, stdout, func(spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
			return harness.ShardPayload(ctx, spec, shard, workerOpts)
		})
		if err != nil {
			return runFail(stderr, err)
		}
		return 0
	case *remote != "":
		return runRemote(ctx, spec, *remote, opts, *progress, stdout, stderr)
	case cf.Enabled():
		return runCoordinated(ctx, spec, cf, opts, *progress, stdout, stderr)
	case *journalDir != "":
		// Journal open/validation errors are usage-class (exit 2): a
		// mismatched spec, a missing journal under -resume, a clobbered or
		// corrupt directory — all name what to fix.
		j, prior, err := harness.OpenJournal(*journalDir, *resumeJnl, spec)
		if err != nil {
			return fail(stderr, err)
		}
		defer j.Close()
		var snapErr error
		executed, err := harness.GenerateJournaled(ctx, spec, j, prior, harness.DefaultResumeSpans, stdout, opts,
			func(render func(io.Writer) error, done, total int) {
				if werr := journal.WriteReport(*journalDir, func(w io.Writer) error {
					if err := render(w); err != nil {
						return err
					}
					if done < total {
						fmt.Fprintf(w, "# journal: %d of %d trials\n", done, total)
					}
					return nil
				}); werr != nil && snapErr == nil {
					snapErr = werr
				}
			})
		if err != nil {
			return runFail(stderr, err)
		}
		if snapErr != nil {
			return runFail(stderr, snapErr)
		}
		fmt.Fprintf(stderr, "journal: executed %d trials\n", executed)
		if derr := j.Degraded(); derr != nil {
			fmt.Fprintf(stderr, "dpmr-exp: WARNING: the report above is complete, but the journal degraded and cannot be resumed: %v\n", derr)
		}
		return 0
	}

	if spec.Exp == "all" {
		if err := harness.GenerateAll(ctx, spec, stdout, opts); err != nil {
			return runFail(stderr, err)
		}
		return 0
	}
	err = runSession(ctx, spec, stdout, stderr, *progress,
		harness.WithParallel(*parallel), harness.WithEviction(*evict),
		harness.WithReference(!*compile), harness.WithPrecompile(*precomp))
	if err != nil {
		return runFail(stderr, err)
	}
	return 0
}

// runSession starts a streaming Session for the spec, renders its event
// stream to stderr when progress is on, and waits for completion — the
// context-first path unsharded and sharded single-experiment runs share.
func runSession(ctx context.Context, spec harness.Spec, report io.Writer, stderr io.Writer,
	progress bool, opts ...harness.Option) error {
	s, err := harness.Start(ctx, spec, append(opts, harness.WithReport(report))...)
	if err != nil {
		return err
	}
	var sink func(harness.Event)
	if progress {
		sink = harness.RenderProgress(stderr, spec.Exp)
	}
	_, err = s.Drain(sink)
	return err
}

// runCoordinated schedules the experiment's shards on a worker fleet and
// renders the merged report — byte-identical to an unsharded run — to
// stdout. The Spec rides in every assignment; spawned workers' argv
// carries only execution policy.
func runCoordinated(ctx context.Context, spec harness.Spec, cf coord.CLIFlags, opts harness.Options,
	progress bool, stdout, stderr io.Writer) int {
	// Per-trial progress from N concurrent workers would interleave;
	// workers run quiet and the coordinator reports shard-level events.
	workerOpts := opts
	workerOpts.Events = nil

	fleet := coord.FleetOptions{
		Spec:    spec,
		Workers: cf.Workers, Shards: cf.Shards, Lease: cf.Lease,
		Chaos: cf.Chaos, Stderr: stderr,
		Local: func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
			return harness.ShardPayload(ctx, spec, shard, workerOpts)
		},
	}
	if cf.Spawn {
		fleet.SpawnArgv = workerArgv(opts)
	}
	if progress {
		fleet.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, "coord: "+format+"\n", args...)
		}
	}
	payloads, err := coord.RunFleet(ctx, fleet)
	if err != nil {
		return runFail(stderr, err)
	}
	readers := make([]io.Reader, len(payloads))
	for i, p := range payloads {
		readers[i] = bytes.NewReader(p)
	}
	if err := harness.GenerateMerged(ctx, spec, stdout, readers, opts); err != nil {
		return runFail(stderr, err)
	}
	return 0
}

// runRemote submits the experiment Spec to a dpmrd campaign service and
// merges the shard payloads it streams back — the same fingerprint +
// exact-tiling merge as -coord, so the report is byte-identical to a
// local run and nothing is taken on the daemon's word. Progress renders
// the daemon's typed shard events exactly like local session events.
func runRemote(ctx context.Context, spec harness.Spec, addr string, opts harness.Options,
	progress bool, stdout, stderr io.Writer) int {
	var sink func(harness.Event)
	if progress {
		sink = harness.RenderProgress(stderr, spec.Exp+"@"+addr)
	}
	payloads, err := coordnet.Submit(ctx, addr, spec, sink)
	if err != nil {
		return runFail(stderr, err)
	}
	readers := make([]io.Reader, len(payloads))
	for i, p := range payloads {
		readers[i] = bytes.NewReader(p)
	}
	if err := harness.GenerateMerged(ctx, spec, stdout, readers, opts); err != nil {
		return runFail(stderr, err)
	}
	return 0
}

// workerArgv is the flag line of a spawned worker: pure execution
// policy. The experiment description travels in each coord.Assignment,
// so nothing here can change the plan or its fingerprint.
func workerArgv(opts harness.Options) []string {
	return []string{
		"-worker",
		"-parallel", strconv.Itoa(max(opts.Parallel, 1)),
		"-evict=" + strconv.FormatBool(opts.Evict),
		"-compile=" + strconv.FormatBool(!opts.Reference),
		"-precompile", strconv.Itoa(opts.Precompile),
	}
}

// expandPartialArgs turns -merge's positional arguments into the partial
// files to merge: a directory expands to its *.json files, an argument
// containing glob metacharacters expands via filepath.Glob, and anything
// else is taken literally. An argument matching nothing is an error — a
// silently empty expansion would merge an incomplete shard set, which
// the merge layer would then reject far more cryptically.
func expandPartialArgs(args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("-merge needs partial-result files, directories, or globs as arguments")
	}
	var files []string
	for _, arg := range args {
		if fi, err := os.Stat(arg); err == nil {
			if !fi.IsDir() {
				// An existing file always means itself, even when its
				// name contains glob metacharacters.
				files = append(files, arg)
				continue
			}
			matches, err := filepath.Glob(filepath.Join(arg, "*.json"))
			if err != nil {
				return nil, err
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("-merge: no *.json partials in directory %s", arg)
			}
			files = append(files, matches...)
			continue
		}
		if strings.ContainsAny(arg, "*?[") {
			matches, err := filepath.Glob(arg)
			if err != nil {
				return nil, fmt.Errorf("-merge: bad pattern %q: %w", arg, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("-merge: no partials match %q", arg)
			}
			files = append(files, matches...)
			continue
		}
		files = append(files, arg)
	}
	return files, nil
}

// fail reports command-line misuse (bad flags, flag combinations, or an
// invalid -spec file): exit 2. Failures of the run itself — unknown
// experiments, partial-file I/O, merge validation, campaign errors, a
// fleet that cannot finish — exit 1 via runFail, in every mode (sharded,
// merged, coordinated, or unsharded).
func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-exp:", err)
	return 2
}

func runFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-exp:", err)
	return 1
}
