// Command dpmr-exp regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	dpmr-exp -exp fig3.10            # one table/figure
//	dpmr-exp -exp all                # the full evaluation
//	dpmr-exp -exp tab3.3 -quick      # reduced workloads/sites for a fast pass
//	dpmr-exp -list                   # list experiment ids
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"

	"dpmr/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "", "experiment id (fig3.6..fig4.14, tab3.3/3.4/4.5/4.6) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "quick mode: fewer workloads, sites, runs")
		runs     = flag.Int("runs", 0, "runs per experiment tuple (default 2; 1 in quick mode)")
		maxSites = flag.Int("max-sites", 0, "cap injection sites per workload (0 = all)")
		parallel = flag.Int("parallel", 1, "campaign worker goroutines (output is identical at any count)")
		progress = flag.Bool("progress", false, "report per-trial campaign progress on stderr")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return 0
	}
	if *exp == "" {
		flag.Usage()
		return 2
	}
	opts := harness.Options{Quick: *quick, Runs: *runs, MaxSites: *maxSites, Parallel: *parallel}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials", *exp, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var err error
	if *exp == "all" {
		err = harness.GenerateAll(os.Stdout, opts)
	} else {
		err = harness.Generate(*exp, os.Stdout, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpmr-exp:", err)
		return 1
	}
	return 0
}
