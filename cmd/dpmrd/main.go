// Command dpmrd is the campaign service: an always-on daemon that holds
// a persistent worker fleet and runs experiment Specs submitted by
// dpmr-exp/dpmr-run over the network (their -remote flag).
//
// One binary, two modes:
//
//	dpmrd -listen 127.0.0.1:9021 -workers 4        # the daemon
//	dpmrd -connect 127.0.0.1:9021                  # a fleet worker
//
// -listen accepts TCP host:port or a Unix socket path (anything
// containing a path separator). The daemon's fleet is its -workers
// in-process slots plus every `dpmrd -connect` process that joins; all
// of them hold warm module/program caches across assignments, and
// shards are checked out one at a time, so concurrent client campaigns
// interleave fairly at shard granularity.
//
// With -journal, campaign submissions are journaled per Spec
// fingerprint: a client that disconnects mid-campaign and resubmits the
// identical Spec resumes from the completed spans instead of starting
// over. A severed worker socket is just an expired lease — the
// coordinator re-leases the shard, the worker redials and rejoins, and
// the client-side fingerprint + exact-tiling merge keeps the final
// report byte-identical regardless of how many times that happened.
// -chaos severs worker sockets mid-shard on purpose, as a standing
// drill of exactly that path.
//
// SIGINT/SIGTERM drain gracefully: the listener closes at once,
// in-flight submissions finish, then the fleet's sockets close so
// -connect workers exit cleanly. A second signal kills outright.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	coordnet "dpmr/internal/coord/net"
	"dpmr/internal/failpt"
	"dpmr/internal/harness"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpmrd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen     = fs.String("listen", "", "serve the campaign service on this TCP host:port or Unix socket path")
		connect    = fs.String("connect", "", "join the fleet of the daemon at this address as a worker instead of serving")
		workers    = fs.Int("workers", 0, "in-process worker slots the daemon contributes to its own fleet (-listen mode)")
		journal    = fs.String("journal", "", "journal campaign submissions under this `dir` (per Spec fingerprint) so a disconnected client's resubmission resumes")
		lease      = fs.Duration("lease", 5*time.Minute, "per-shard lease; an assignment outliving it is speculatively re-leased, and a dead fleet fails submissions instead of hanging them")
		keepalive  = fs.Duration("keepalive", 30*time.Second, "ping idle worker sockets at this interval and drop the unresponsive (0 disables)")
		katimeout  = fs.Duration("keepalive-timeout", 0, "how long an idle worker may take to answer a keepalive ping before it is dropped (0 = the -keepalive interval)")
		failpoints = fs.String("failpoints", "", "arm this failpoint `schedule` (site=action@N;...) for deterministic fault drills; see docs/robustness.md")
		chaos      = fs.Int("chaos", 0, "fault drill: sever this many worker sockets mid-shard (-listen mode)")
		verbose    = fs.Bool("v", false, "log scheduling and fleet diagnostics to stderr")
		parallel   = fs.Int("parallel", 1, "campaign worker goroutines per fleet slot (output is identical at any count)")
		evict      = fs.Bool("evict", true, "release each module after its final trial (bounds peak cache residency)")
		compile    = fs.Bool("compile", true, "execute trials as compiled module bytecode; -compile=false forces the tree-walking reference interpreter")
		precomp    = fs.Int("precompile", 0, "background AOT workers building upcoming modules ahead of the execution frontier (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		return fail(stderr, fmt.Errorf("unexpected arguments %q (dpmrd takes no positionals)", fs.Args()))
	}
	switch {
	case *listen == "" && *connect == "":
		return fail(stderr, fmt.Errorf("one of -listen (serve) or -connect (join a fleet) is required"))
	case *listen != "" && *connect != "":
		return fail(stderr, fmt.Errorf("-listen and -connect are mutually exclusive (serve or join, not both)"))
	}
	if *connect != "" {
		for name, bad := range map[string]bool{
			"-workers": *workers != 0, "-journal": *journal != "", "-chaos": *chaos != 0,
		} {
			if bad {
				return fail(stderr, fmt.Errorf("%s applies to the daemon (-listen), not a fleet worker (-connect)", name))
			}
		}
	}
	if *workers < 0 {
		return fail(stderr, fmt.Errorf("-workers %d: a fleet cannot have negative slots", *workers))
	}
	if *lease <= 0 {
		return fail(stderr, fmt.Errorf("-lease %v: the per-shard lease must be positive (it is what keeps a dead fleet from hanging submissions)", *lease))
	}
	if *keepalive < 0 {
		return fail(stderr, fmt.Errorf("-keepalive %v: negative interval", *keepalive))
	}
	if *katimeout < 0 {
		return fail(stderr, fmt.Errorf("-keepalive-timeout %v: negative timeout", *katimeout))
	}
	if *katimeout > 0 && *keepalive == 0 {
		return fail(stderr, fmt.Errorf("-keepalive-timeout %v without a keepalive: -keepalive 0 disables the sweep the timeout would bound", *katimeout))
	}
	if *chaos < 0 {
		return fail(stderr, fmt.Errorf("-chaos %d: negative sever count", *chaos))
	}
	if *failpoints != "" {
		if err := failpt.Arm(*failpoints); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "dpmrd: failpoints armed: %s\n", *failpoints)
	} else if sched, err := failpt.ArmFromEnv(); err != nil {
		return fail(stderr, fmt.Errorf("%s: %w", failpt.EnvVar, err))
	} else if sched != "" {
		fmt.Fprintf(stderr, "dpmrd: failpoints armed from %s: %s\n", failpt.EnvVar, sched)
	}
	opts := harness.Options{Parallel: *parallel, Evict: *evict, Reference: !*compile, Precompile: *precomp}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	}

	if *connect != "" {
		err := coordnet.WorkerLoop(ctx, *connect, opts, func(rejoin bool) {
			if rejoin {
				fmt.Fprintf(stderr, "dpmrd: rejoined fleet at %s\n", *connect)
			} else {
				fmt.Fprintf(stderr, "dpmrd: joined fleet at %s\n", *connect)
			}
		})
		if err != nil {
			return runFail(stderr, err)
		}
		return 0
	}

	ln, err := coordnet.Listen(*listen)
	if err != nil {
		return runFail(stderr, err)
	}
	fmt.Fprintf(stderr, "dpmrd: listening on %s\n", ln.Addr())
	srv := coordnet.NewServer(coordnet.ServerConfig{
		LocalWorkers:     *workers,
		WorkerOptions:    opts,
		JournalRoot:      *journal,
		Lease:            *lease,
		Keepalive:        *keepalive,
		KeepaliveTimeout: *katimeout,
		Chaos:            *chaos,
		Log:              logf,
	})
	if err := srv.Serve(ctx, ln); err != nil {
		return runFail(stderr, err)
	}
	fmt.Fprintln(stderr, "dpmrd: drained")
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmrd:", err)
	return 2
}

func runFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmrd:", err)
	return 1
}
