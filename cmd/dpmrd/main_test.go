package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFlagValidation: every invalid invocation is a named exit-2 usage
// error — the daemon must refuse bad configuration loudly, not start
// half-configured or hang.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"no mode", nil, 2, "one of -listen"},
		{"both modes", []string{"-listen", "127.0.0.1:0", "-connect", "127.0.0.1:9"}, 2, "mutually exclusive"},
		{"positional", []string{"-listen", "127.0.0.1:0", "stray"}, 2, "unexpected arguments"},
		{"workers on connect", []string{"-connect", "127.0.0.1:9", "-workers", "2"}, 2, "-workers applies to the daemon"},
		{"journal on connect", []string{"-connect", "127.0.0.1:9", "-journal", "j"}, 2, "-journal applies to the daemon"},
		{"chaos on connect", []string{"-connect", "127.0.0.1:9", "-chaos", "1"}, 2, "-chaos applies to the daemon"},
		{"negative workers", []string{"-listen", "127.0.0.1:0", "-workers", "-1"}, 2, "negative slots"},
		{"zero lease", []string{"-listen", "127.0.0.1:0", "-lease", "0s"}, 2, "must be positive"},
		{"negative keepalive", []string{"-listen", "127.0.0.1:0", "-keepalive", "-1s"}, 2, "negative interval"},
		{"negative chaos", []string{"-listen", "127.0.0.1:0", "-chaos", "-2"}, 2, "negative sever count"},
		{"unknown flag", []string{"-nope"}, 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q does not name %q", stderr.String(), tc.wantErr)
			}
			if stdout.Len() != 0 {
				t.Errorf("usage error wrote to stdout: %q", stdout.String())
			}
		})
	}
}

// TestBadListenAddressFailsFast: an unbindable -listen value is a named
// exit-1 error, not a hang.
func TestBadListenAddressFailsFast(t *testing.T) {
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run(context.Background(), []string{"-listen", "256.0.0.1:port"}, io.Discard, &stderr) }()
	select {
	case code := <-done:
		if code != 1 {
			t.Fatalf("exit code = %d, want 1", code)
		}
		if !strings.Contains(stderr.String(), "listen tcp") {
			t.Errorf("stderr %q does not name the listen failure", stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bad -listen address hung instead of failing")
	}
}

// TestBadConnectAddressFailsFast: a worker pointed at a dead daemon is a
// named exit-1 error.
func TestBadConnectAddressFailsFast(t *testing.T) {
	var stderr bytes.Buffer
	sock := filepath.Join(t.TempDir(), "no-daemon.sock")
	done := make(chan int, 1)
	go func() { done <- run(context.Background(), []string{"-connect", sock}, io.Discard, &stderr) }()
	select {
	case code := <-done:
		if code != 1 {
			t.Fatalf("exit code = %d, want 1", code)
		}
		if !strings.Contains(stderr.String(), "dial unix") {
			t.Errorf("stderr %q does not name the dial failure", stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bad -connect address hung instead of failing")
	}
}

// TestGracefulDrain: a daemon on a Unix socket starts listening, then
// exits 0 when its context is cancelled (the SIGTERM path).
func TestGracefulDrain(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "fleet.sock")
	ctx, cancel := context.WithCancel(context.Background())
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run(ctx, []string{"-listen", sock, "-workers", "1"}, io.Discard, &stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never bound its socket")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drained daemon exited %d (stderr: %s)", code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "drained") {
			t.Errorf("stderr %q does not confirm the drain", stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
}
