// Command dpmr-run executes one workload under one configuration and
// reports the outcome: exit status, output, cycles, and memory statistics.
// With -campaign it instead runs the full sites × runs injection grid for
// that workload/variant on the parallel campaign engine.
//
// Usage:
//
//	dpmr-run -workload mcf                               # golden run
//	dpmr-run -workload mcf -dpmr -design mds             # MDS, defaults
//	dpmr-run -workload art -dpmr -diversity rearrange-heap -policy "static 10%"
//	dpmr-run -workload bzip2 -dpmr -inject immediate-free -site 0
//	dpmr-run -workload mcf -dpmr -campaign -inject immediate-free -parallel 8
//
// Campaigns shard across processes: each shard runs a contiguous slice
// of the canonical trial plan and writes a partial result, and -merge
// reassembles the summary exactly as a single-process run would compute
// it:
//
//	dpmr-run -workload mcf -campaign -inject immediate-free -shard 0/3 -out p0.json
//	dpmr-run -workload mcf -campaign -inject immediate-free -shard 1/3 -out p1.json
//	dpmr-run -workload mcf -campaign -inject immediate-free -shard 2/3 -out p2.json
//	dpmr-run -workload mcf -campaign -inject immediate-free -merge p0.json p1.json p2.json
//
// With -coord the sharding runs under a supervising coordinator: the
// plan is cut into -coord-shards slices, leased to a worker fleet
// (in-process goroutines, or spawned `dpmr-run -worker` processes with
// -coord-spawn streaming partials over JSON-lines stdio), stragglers
// and crashes are retried, and the merged summary prints in one command:
//
//	dpmr-run -workload mcf -campaign -inject immediate-free -coord 4
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"dpmr/internal/coord"
	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/extlib"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/interp"
	"dpmr/internal/prof"
	"dpmr/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpmr-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "mcf", "workload: art, bzip2, equake, mcf")
		useDPMR   = fs.Bool("dpmr", false, "apply the DPMR transformation")
		design    = fs.String("design", "sds", "DPMR design: sds or mds")
		diversity = fs.String("diversity", "no-diversity", "diversity transformation")
		policy    = fs.String("policy", "all loads", "state comparison policy")
		inject    = fs.String("inject", "", "fault to inject: heap-array-resize or immediate-free")
		site      = fs.Int("site", 0, "allocation site id for the injection")
		seed      = fs.Int64("seed", 1, "VM seed (diversity randomness)")
		useDSA    = fs.Bool("dsa", false, "use the Chapter 5 DSA-refined pipeline")
		listSites = fs.Bool("sites", false, "list injectable allocation sites and exit")
		showIR    = fs.Bool("dump-ir", false, "print the module IR instead of running")
		campaign  = fs.Bool("campaign", false, "run the full sites × runs injection campaign for this workload/variant")
		parallel  = fs.Int("parallel", 1, "campaign worker goroutines (with -campaign)")
		runs      = fs.Int("runs", 2, "runs per injection site (with -campaign)")
		progress  = fs.Bool("progress", false, "report campaign progress and module-cache residency on stderr (with -campaign)")
		evict     = fs.Bool("evict", true, "release each module after its final trial (with -campaign)")
		shard     = fs.String("shard", "", "run campaign shard i/N and write a partial result (with -campaign)")
		outPath   = fs.String("out", "", "partial-result output file with -shard (default stdout)")
		merge     = fs.Bool("merge", false, "merge campaign partial-result files (the positional arguments; with -campaign)")
		compile   = fs.Bool("compile", true, "execute as compiled module bytecode; -compile=false forces the tree-walking reference interpreter (output is byte-identical, only speed differs)")
	)
	var cf coord.CLIFlags
	cf.Register(fs, "campaign", "worker mode: serve campaign shard assignments from stdin (JSON lines; normally spawned by a coordinator)")
	var pf prof.Flags
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "dpmr-run:", err)
		return 2
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		return fail(err)
	}

	if *listSites {
		for _, kind := range []faultinject.Kind{faultinject.HeapArrayResize, faultinject.ImmediateFree} {
			for _, s := range faultinject.Enumerate(w.Build(), kind) {
				fmt.Fprintf(stdout, "%s\n", s)
			}
		}
		return 0
	}

	var injectKind faultinject.Kind
	if *inject != "" {
		switch *inject {
		case "heap-array-resize":
			injectKind = faultinject.HeapArrayResize
		case "immediate-free":
			injectKind = faultinject.ImmediateFree
		default:
			return fail(fmt.Errorf("unknown injection %q", *inject))
		}
	}

	if !*campaign {
		if *shard != "" {
			return fail(fmt.Errorf("-shard requires -campaign"))
		}
		if *merge {
			return fail(fmt.Errorf("-merge requires -campaign"))
		}
		if cf.Enabled() {
			return fail(fmt.Errorf("-coord requires -campaign"))
		}
		if cf.Worker {
			return fail(fmt.Errorf("-worker requires -campaign"))
		}
	}
	if *outPath != "" && *shard == "" {
		return fail(fmt.Errorf("-out requires -shard (merged and unsharded summaries go to stdout)"))
	}
	if err := cf.Validate(fs); err != nil {
		return fail(err)
	}
	// Validate the remaining usage constraints (parsing each input once)
	// before profiling starts, so a usage error cannot truncate an
	// existing profile file: -cpuprofile is only created once the
	// invocation is known-valid.
	if *campaign && injectKind == 0 {
		return fail(fmt.Errorf("-campaign requires -inject heap-array-resize or immediate-free"))
	}
	var shardSpec harness.ShardSpec
	if *shard != "" {
		spec, err := harness.ParseShard(*shard)
		if err != nil {
			return fail(err)
		}
		shardSpec = spec
	}
	variant := harness.Stdapp()
	if *useDPMR {
		d := dpmr.SDS
		if *design == "mds" {
			d = dpmr.MDS
		}
		div, err := dpmr.DiversityByName(*diversity)
		if err != nil {
			return fail(err)
		}
		pol, err := dpmr.PolicyByName(*policy)
		if err != nil {
			return fail(err)
		}
		variant = harness.NewVariant(d, div, pol)
	}
	if *campaign {
		// The campaign engine drives every site with per-run seeds; the
		// single-run-only flags would be silently ignored, so refuse them.
		if *useDSA {
			return fail(fmt.Errorf("-campaign does not support the -dsa pipeline"))
		}
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "seed" || f.Name == "site" || f.Name == "dump-ir" {
				conflict = fmt.Errorf("-%s only applies to single runs, not -campaign", f.Name)
			}
		})
		if conflict != nil {
			return fail(conflict)
		}
		modes := 0
		for _, on := range []bool{*merge, *shard != "", cf.Enabled(), cf.Worker} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			return fail(fmt.Errorf("-merge, -shard, -coord, and -worker are mutually exclusive"))
		}
		if *merge && len(fs.Args()) == 0 {
			return fail(fmt.Errorf("-merge needs the partial-result files as arguments"))
		}
	}
	profStop, perr := pf.Start()
	if perr != nil {
		// Profile-file I/O failure is a run failure (exit 1), not
		// command-line misuse.
		return execFail(stderr, perr)
	}
	defer func() {
		// Profile flushing failures can't change the exit code from a
		// defer; surface them loudly instead of dropping them.
		if err := profStop(); err != nil {
			fmt.Fprintln(stderr, "dpmr-run:", err)
		}
	}()

	if *campaign {
		return runCampaign(campaignArgs{
			w: w, useDPMR: *useDPMR, design: *design, diversity: *diversity, policy: *policy,
			variant: variant,
			kind:    injectKind, injectName: *inject, parallel: *parallel, runs: *runs,
			progress: *progress, evict: *evict, compile: *compile,
			shard: *shard, shardSpec: shardSpec, outPath: *outPath, merge: *merge, mergeFiles: fs.Args(),
			coordFlags: cf,
			stdin:      stdin, stdout: stdout, stderr: stderr,
		})
	}

	m := w.Build()
	if *inject != "" {
		var found bool
		for _, s := range faultinject.Enumerate(m, injectKind) {
			if s.ID == *site {
				fm, err := faultinject.Apply(m, s)
				if err != nil {
					return fail(err)
				}
				m = fm
				found = true
				break
			}
		}
		if !found {
			return fail(fmt.Errorf("no injectable %s site %d (try dpmr-run -workload %s -sites)", injectKind, *site, *workload))
		}
	}

	externs := extlib.Base()
	if *useDPMR {
		cfg := dpmr.Config{Design: variant.Design, Diversity: variant.Diversity, Policy: variant.Policy}
		if *useDSA {
			var res *dsa.Result
			m, res, err = dsa.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "dsa:     %s; excluded sites %v\n", res.Stats(), res.ExcludedSites())
		} else {
			m, err = dpmr.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
		}
		externs = extlib.Wrapped(variant.Design)
	}

	if *showIR {
		fmt.Fprint(stdout, m.String())
		return 0
	}

	var prog *interp.Program
	if *compile {
		m.Freeze()
		// A compile failure is not fatal — the run simply proceeds on the
		// reference tree-walker with identical results, matching the
		// harness's fallback behavior.
		if p, err := interp.Compile(m); err == nil {
			prog = p
		}
	}
	res := interp.Run(m, interp.Config{Externs: externs, Seed: *seed, StepLimit: 2_000_000_000, Prog: prog})
	fmt.Fprintf(stdout, "exit:    %v (code %d) %s\n", res.Kind, res.Code, res.Reason)
	fmt.Fprintf(stdout, "steps:   %d\n", res.Steps)
	fmt.Fprintf(stdout, "cycles:  %d\n", res.Cycles)
	fmt.Fprintf(stdout, "heap:    %d allocs, %d frees, peak %d bytes\n",
		res.Mem.HeapAllocs, res.Mem.HeapFrees, res.Mem.HeapPeak)
	if res.FaultSeen {
		fmt.Fprintf(stdout, "fault:   first executed at cycle %d\n", res.FaultCycle)
	}
	fmt.Fprintf(stdout, "output:\n%s", res.Output)
	if res.Kind != interp.ExitNormal {
		return 1
	}
	return 0
}

// campaignArgs bundles the -campaign mode's flag values.
type campaignArgs struct {
	w                         workloads.Workload
	useDPMR                   bool
	design, diversity, policy string
	variant                   harness.Variant
	kind                      faultinject.Kind
	injectName                string
	parallel, runs            int
	progress, evict, merge    bool
	compile                   bool
	shard, outPath            string
	shardSpec                 harness.ShardSpec
	mergeFiles                []string
	coordFlags                coord.CLIFlags
	stdin                     io.Reader
	stdout, stderr            io.Writer
}

// usageFail reports command-line misuse (bad flags, names, or flag
// combinations): exit 2. Failures of the run itself — campaign
// execution, partial-file I/O, merge validation, a fleet that cannot
// finish — exit 1 via execFail, matching dpmr-exp and dpmrc.
func usageFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-run:", err)
	return 2
}

func execFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-run:", err)
	return 1
}

// runCampaign executes the sites × runs injection grid for one workload
// and one variant on the parallel campaign engine — whole, as one shard
// writing a partial result, merging shard partials, or scheduled on a
// coordinator fleet — and prints the coverage summary.
func runCampaign(a campaignArgs) int {
	runFail := func(err error) int { return execFail(a.stderr, err) }
	// run() validated the flag set and parsed the variant and shard spec
	// before profiling started; a carries the parsed values.
	variant := a.variant
	r := harness.NewRunner()
	r.Runs = a.runs
	r.Parallel = a.parallel
	r.EvictModules = a.evict
	r.Compile = a.compile
	if a.progress {
		r.Progress = func(done, total int) {
			st := r.CacheStats()
			fmt.Fprintf(a.stderr, "\rcampaign: %d/%d trials (%d modules resident, peak %d, %d evicted)",
				done, total, st.Resident, st.Peak, st.Evicted)
			if done == total {
				fmt.Fprintln(a.stderr)
			}
		}
	}
	cfg := harness.CampaignConfig{
		Workloads: []workloads.Workload{a.w},
		Variants:  []harness.Variant{variant},
		Kind:      a.kind,
	}

	switch {
	case a.coordFlags.Worker:
		// Serve shard assignments from the coordinator over stdio. The
		// Runner persists across assignments, so shards of the same plan
		// leased to this worker reuse its module cache.
		err := coord.Serve(a.stdin, a.stdout, func(shard harness.ShardSpec) ([]byte, error) {
			r.Shard = shard
			p, err := r.RunCampaignPartial(cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := p.Encode(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
		if err != nil {
			return runFail(err)
		}
		return 0
	case a.coordFlags.Enabled():
		return runCoordinatedCampaign(a, r, cfg, variant)
	case a.shard != "":
		r.Shard = a.shardSpec
		p, err := r.RunCampaignPartial(cfg)
		if err != nil {
			return runFail(err)
		}
		out := a.stdout
		var f *os.File
		if a.outPath != "" && a.outPath != "-" {
			f, err = os.Create(a.outPath)
			if err != nil {
				return runFail(err)
			}
			out = f
		}
		if err := p.Encode(out); err != nil {
			if f != nil {
				f.Close()
			}
			return runFail(err)
		}
		// A close error (deferred flush, ENOSPC) would leave a truncated
		// partial behind a zero exit; surface it.
		if f != nil {
			if err := f.Close(); err != nil {
				return runFail(err)
			}
		}
		fmt.Fprintf(a.stderr, "shard %s: trials [%d, %d) of %d\n", a.shardSpec, p.Lo, p.Hi, p.Total)
		return 0
	case a.merge:
		parts := make([]*harness.PartialResult, len(a.mergeFiles))
		for i, name := range a.mergeFiles {
			f, err := os.Open(name)
			if err != nil {
				return runFail(err)
			}
			p, err := harness.DecodePartial(f)
			f.Close()
			if err != nil {
				return runFail(fmt.Errorf("%s: %w", name, err))
			}
			parts[i] = p
		}
		cr, err := r.MergeCampaign(cfg, parts)
		if err != nil {
			return runFail(err)
		}
		printCampaignSummary(a.stdout, a.w, a.kind, variant, fmt.Sprintf("%d shards", len(parts)), cr)
		return 0
	}

	cr, err := r.RunCampaign(cfg)
	if err != nil {
		return runFail(err)
	}
	printCampaignSummary(a.stdout, a.w, a.kind, variant, fmt.Sprintf("%d workers", a.parallel), cr)
	st := r.CacheStats()
	fmt.Fprintf(a.stdout, "modules:    %d built, peak %d resident, %d evicted\n", st.Builds, st.Peak, st.Evicted)
	return 0
}

// runCoordinatedCampaign schedules the campaign's shards on a worker
// fleet — in-process goroutines or spawned `dpmr-run -worker` processes —
// merges the streamed partials, and prints the same summary an unsharded
// run computes.
func runCoordinatedCampaign(a campaignArgs, r *harness.Runner, cfg harness.CampaignConfig, variant harness.Variant) int {
	runFail := func(err error) int { return execFail(a.stderr, err) }
	cf := a.coordFlags
	fleet := coord.FleetOptions{
		Workers: cf.Workers, Shards: cf.Shards, Lease: cf.Lease,
		Chaos: cf.Chaos, Stderr: a.stderr,
		// In-process workers run concurrently, so each assignment gets
		// its own Runner (the coordinator's Runner r is reserved for the
		// final merge).
		Local: func(_ context.Context, shard harness.ShardSpec) ([]byte, error) {
			wr := harness.NewRunner()
			wr.Runs = a.runs
			wr.Parallel = a.parallel
			wr.EvictModules = a.evict
			wr.Compile = a.compile
			wr.Shard = shard
			p, err := wr.RunCampaignPartial(cfg)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := p.Encode(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}
	if cf.Spawn {
		fleet.SpawnArgv = campaignWorkerArgv(a)
	}
	if a.progress {
		fleet.Log = func(format string, args ...any) {
			fmt.Fprintf(a.stderr, "coord: "+format+"\n", args...)
		}
	}
	payloads, err := coord.RunFleet(context.Background(), fleet)
	if err != nil {
		return runFail(err)
	}
	parts := make([]*harness.PartialResult, len(payloads))
	for i, payload := range payloads {
		p, err := harness.DecodePartial(bytes.NewReader(payload))
		if err != nil {
			return runFail(fmt.Errorf("shard %d: %w", i, err))
		}
		parts[i] = p
	}
	cr, err := r.MergeCampaign(cfg, parts)
	if err != nil {
		return runFail(err)
	}
	printCampaignSummary(a.stdout, a.w, a.kind, variant,
		fmt.Sprintf("%d shards via %d workers", len(payloads), cf.Workers), cr)
	return 0
}

// campaignWorkerArgv reconstructs the flag line a spawned `dpmr-run
// -worker` needs to recompute the coordinator's exact campaign plan; any
// divergence is caught downstream by the plan fingerprint.
func campaignWorkerArgv(a campaignArgs) []string {
	argv := []string{
		"-worker", "-campaign",
		"-workload", a.w.Name,
		"-inject", a.injectName,
		"-runs", strconv.Itoa(a.runs),
		"-parallel", strconv.Itoa(a.parallel),
		"-evict=" + strconv.FormatBool(a.evict),
		"-compile=" + strconv.FormatBool(a.compile),
	}
	if a.useDPMR {
		argv = append(argv, "-dpmr", "-design", a.design, "-diversity", a.diversity, "-policy", a.policy)
	}
	return argv
}

func printCampaignSummary(w io.Writer, wl workloads.Workload, kind faultinject.Kind,
	variant harness.Variant, how string, cr *harness.CampaignResult) {
	c := cr.Cell(variant, wl.Name)
	fmt.Fprintf(w, "campaign: %s %s variant %s, %s\n", wl.Name, kind, variant.Label(), how)
	fmt.Fprintf(w, "injections: %d successful\n", c.N)
	fmt.Fprintf(w, "coverage:   CO %.2f + NatDet %.2f + DpmrDet %.2f = %.2f\n",
		c.CO, c.NatDet, c.DpmrDet, c.Coverage())
	if c.MeanT2DMS > 0 {
		fmt.Fprintf(w, "latency:    mean time to detection %.3f ms\n", c.MeanT2DMS)
	}
}
