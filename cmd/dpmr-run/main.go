// Command dpmr-run executes one workload under one configuration and
// reports the outcome: exit status, output, cycles, and memory statistics.
// With -campaign it instead runs the full sites × runs injection grid for
// that workload/variant on the parallel campaign engine.
//
// Usage:
//
//	dpmr-run -workload mcf                               # golden run
//	dpmr-run -workload mcf -dpmr -design mds             # MDS, defaults
//	dpmr-run -workload art -dpmr -diversity rearrange-heap -policy "static 10%"
//	dpmr-run -workload bzip2 -dpmr -inject immediate-free -site 0
//	dpmr-run -workload mcf -dpmr -campaign -inject immediate-free -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"

	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/extlib"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/interp"
	"dpmr/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload  = flag.String("workload", "mcf", "workload: art, bzip2, equake, mcf")
		useDPMR   = flag.Bool("dpmr", false, "apply the DPMR transformation")
		design    = flag.String("design", "sds", "DPMR design: sds or mds")
		diversity = flag.String("diversity", "no-diversity", "diversity transformation")
		policy    = flag.String("policy", "all loads", "state comparison policy")
		inject    = flag.String("inject", "", "fault to inject: heap-array-resize or immediate-free")
		site      = flag.Int("site", 0, "allocation site id for the injection")
		seed      = flag.Int64("seed", 1, "VM seed (diversity randomness)")
		useDSA    = flag.Bool("dsa", false, "use the Chapter 5 DSA-refined pipeline")
		listSites = flag.Bool("sites", false, "list injectable allocation sites and exit")
		showIR    = flag.Bool("dump-ir", false, "print the module IR instead of running")
		campaign  = flag.Bool("campaign", false, "run the full sites × runs injection campaign for this workload/variant")
		parallel  = flag.Int("parallel", 1, "campaign worker goroutines (with -campaign)")
		runs      = flag.Int("runs", 2, "runs per injection site (with -campaign)")
		progress  = flag.Bool("progress", false, "report campaign progress on stderr (with -campaign)")
	)
	flag.Parse()

	w, err := workloads.ByName(*workload)
	if err != nil {
		return fail(err)
	}

	if *listSites {
		for _, kind := range []faultinject.Kind{faultinject.HeapArrayResize, faultinject.ImmediateFree} {
			for _, s := range faultinject.Enumerate(w.Build(), kind) {
				fmt.Printf("%s\n", s)
			}
		}
		return 0
	}

	var injectKind faultinject.Kind
	if *inject != "" {
		switch *inject {
		case "heap-array-resize":
			injectKind = faultinject.HeapArrayResize
		case "immediate-free":
			injectKind = faultinject.ImmediateFree
		default:
			return fail(fmt.Errorf("unknown injection %q", *inject))
		}
	}

	if *campaign {
		// The campaign engine drives every site with per-run seeds; the
		// single-run-only flags would be silently ignored, so refuse them.
		if *useDSA {
			return fail(fmt.Errorf("-campaign does not support the -dsa pipeline"))
		}
		var conflict error
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" || f.Name == "site" || f.Name == "dump-ir" {
				conflict = fmt.Errorf("-%s only applies to single runs, not -campaign", f.Name)
			}
		})
		if conflict != nil {
			return fail(conflict)
		}
		return runCampaign(w, *useDPMR, *design, *diversity, *policy, injectKind, *parallel, *runs, *progress)
	}

	m := w.Build()
	if *inject != "" {
		var found bool
		for _, s := range faultinject.Enumerate(m, injectKind) {
			if s.ID == *site {
				fm, err := faultinject.Apply(m, s)
				if err != nil {
					return fail(err)
				}
				m = fm
				found = true
				break
			}
		}
		if !found {
			return fail(fmt.Errorf("no injectable %s site %d (try dpmr-run -workload %s -sites)", injectKind, *site, *workload))
		}
	}

	d := dpmr.SDS
	if *design == "mds" {
		d = dpmr.MDS
	}
	externs := extlib.Base()
	if *useDPMR {
		div, err := dpmr.DiversityByName(*diversity)
		if err != nil {
			return fail(err)
		}
		pol, err := dpmr.PolicyByName(*policy)
		if err != nil {
			return fail(err)
		}
		cfg := dpmr.Config{Design: d, Diversity: div, Policy: pol}
		if *useDSA {
			var res *dsa.Result
			m, res, err = dsa.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
			fmt.Printf("dsa:     %s; excluded sites %v\n", res.Stats(), res.ExcludedSites())
		} else {
			m, err = dpmr.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
		}
		externs = extlib.Wrapped(d)
	}

	if *showIR {
		fmt.Print(m.String())
		return 0
	}

	res := interp.Run(m, interp.Config{Externs: externs, Seed: *seed, StepLimit: 2_000_000_000})
	fmt.Printf("exit:    %v (code %d) %s\n", res.Kind, res.Code, res.Reason)
	fmt.Printf("steps:   %d\n", res.Steps)
	fmt.Printf("cycles:  %d\n", res.Cycles)
	fmt.Printf("heap:    %d allocs, %d frees, peak %d bytes\n",
		res.Mem.HeapAllocs, res.Mem.HeapFrees, res.Mem.HeapPeak)
	if res.FaultSeen {
		fmt.Printf("fault:   first executed at cycle %d\n", res.FaultCycle)
	}
	fmt.Printf("output:\n%s", res.Output)
	if res.Kind != interp.ExitNormal {
		return 1
	}
	return 0
}

// runCampaign executes the sites × runs injection grid for one workload
// and one variant on the parallel campaign engine and prints the
// coverage summary.
func runCampaign(w workloads.Workload, useDPMR bool, design, diversity, policy string,
	kind faultinject.Kind, parallel, runs int, progress bool) int {
	if kind == 0 {
		return fail(fmt.Errorf("-campaign requires -inject heap-array-resize or immediate-free"))
	}
	variant := harness.Stdapp()
	if useDPMR {
		d := dpmr.SDS
		if design == "mds" {
			d = dpmr.MDS
		}
		div, err := dpmr.DiversityByName(diversity)
		if err != nil {
			return fail(err)
		}
		pol, err := dpmr.PolicyByName(policy)
		if err != nil {
			return fail(err)
		}
		variant = harness.NewVariant(d, div, pol)
	}
	r := harness.NewRunner()
	r.Runs = runs
	r.Parallel = parallel
	if progress {
		r.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	cr, err := r.RunCampaign(harness.CampaignConfig{
		Workloads: []workloads.Workload{w},
		Variants:  []harness.Variant{variant},
		Kind:      kind,
	})
	if err != nil {
		return fail(err)
	}
	c := cr.Cell(variant, w.Name)
	fmt.Printf("campaign: %s %s variant %s, %d workers\n", w.Name, kind, variant.Label(), parallel)
	fmt.Printf("injections: %d successful\n", c.N)
	fmt.Printf("coverage:   CO %.2f + NatDet %.2f + DpmrDet %.2f = %.2f\n",
		c.CO, c.NatDet, c.DpmrDet, c.Coverage())
	if c.MeanT2DMS > 0 {
		fmt.Printf("latency:    mean time to detection %.3f ms\n", c.MeanT2DMS)
	}
	fmt.Printf("modules:    %d distinct builds cached\n", r.CachedModules())
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "dpmr-run:", err)
	return 2
}
