// Command dpmr-run executes one workload under one configuration and
// reports the outcome: exit status, output, cycles, and memory statistics.
//
// Usage:
//
//	dpmr-run -workload mcf                               # golden run
//	dpmr-run -workload mcf -dpmr -design mds             # MDS, defaults
//	dpmr-run -workload art -dpmr -diversity rearrange-heap -policy "static 10%"
//	dpmr-run -workload bzip2 -dpmr -inject immediate-free -site 0
package main

import (
	"flag"
	"fmt"
	"os"

	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/extlib"
	"dpmr/internal/faultinject"
	"dpmr/internal/interp"
	"dpmr/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload  = flag.String("workload", "mcf", "workload: art, bzip2, equake, mcf")
		useDPMR   = flag.Bool("dpmr", false, "apply the DPMR transformation")
		design    = flag.String("design", "sds", "DPMR design: sds or mds")
		diversity = flag.String("diversity", "no-diversity", "diversity transformation")
		policy    = flag.String("policy", "all loads", "state comparison policy")
		inject    = flag.String("inject", "", "fault to inject: heap-array-resize or immediate-free")
		site      = flag.Int("site", 0, "allocation site id for the injection")
		seed      = flag.Int64("seed", 1, "VM seed (diversity randomness)")
		useDSA    = flag.Bool("dsa", false, "use the Chapter 5 DSA-refined pipeline")
		listSites = flag.Bool("sites", false, "list injectable allocation sites and exit")
		showIR    = flag.Bool("dump-ir", false, "print the module IR instead of running")
	)
	flag.Parse()

	w, err := workloads.ByName(*workload)
	if err != nil {
		return fail(err)
	}
	m := w.Build()

	if *listSites {
		for _, kind := range []faultinject.Kind{faultinject.HeapArrayResize, faultinject.ImmediateFree} {
			for _, s := range faultinject.Enumerate(w.Build(), kind) {
				fmt.Printf("%s\n", s)
			}
		}
		return 0
	}

	if *inject != "" {
		kind := faultinject.ImmediateFree
		if *inject == "heap-array-resize" {
			kind = faultinject.HeapArrayResize
		} else if *inject != "immediate-free" {
			return fail(fmt.Errorf("unknown injection %q", *inject))
		}
		var found bool
		for _, s := range faultinject.Enumerate(m, kind) {
			if s.ID == *site {
				if err := faultinject.Apply(m, s); err != nil {
					return fail(err)
				}
				found = true
				break
			}
		}
		if !found {
			return fail(fmt.Errorf("no injectable %s site %d (try dpmr-run -workload %s -sites)", kind, *site, *workload))
		}
	}

	d := dpmr.SDS
	if *design == "mds" {
		d = dpmr.MDS
	}
	externs := extlib.Base()
	if *useDPMR {
		div, err := dpmr.DiversityByName(*diversity)
		if err != nil {
			return fail(err)
		}
		pol, err := dpmr.PolicyByName(*policy)
		if err != nil {
			return fail(err)
		}
		cfg := dpmr.Config{Design: d, Diversity: div, Policy: pol}
		if *useDSA {
			var res *dsa.Result
			m, res, err = dsa.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
			fmt.Printf("dsa:     %s; excluded sites %v\n", res.Stats(), res.ExcludedSites())
		} else {
			m, err = dpmr.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
		}
		externs = extlib.Wrapped(d)
	}

	if *showIR {
		fmt.Print(m.String())
		return 0
	}

	res := interp.Run(m, interp.Config{Externs: externs, Seed: *seed, StepLimit: 2_000_000_000})
	fmt.Printf("exit:    %v (code %d) %s\n", res.Kind, res.Code, res.Reason)
	fmt.Printf("steps:   %d\n", res.Steps)
	fmt.Printf("cycles:  %d\n", res.Cycles)
	fmt.Printf("heap:    %d allocs, %d frees, peak %d bytes\n",
		res.Mem.HeapAllocs, res.Mem.HeapFrees, res.Mem.HeapPeak)
	if res.FaultSeen {
		fmt.Printf("fault:   first executed at cycle %d\n", res.FaultCycle)
	}
	fmt.Printf("output:\n%s", res.Output)
	if res.Kind != interp.ExitNormal {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "dpmr-run:", err)
	return 2
}
