// Command dpmr-run executes one workload under one configuration and
// reports the outcome: exit status, output, cycles, and memory statistics.
// With -campaign it instead runs the full sites × runs injection grid for
// that workload/variant on the parallel campaign engine.
//
// Usage:
//
//	dpmr-run -workload mcf                               # golden run
//	dpmr-run -workload mcf -dpmr -design mds             # MDS, defaults
//	dpmr-run -workload art -dpmr -diversity rearrange-heap -policy "static 10%"
//	dpmr-run -workload bzip2 -dpmr -inject immediate-free -site 0
//	dpmr-run -workload mcf -dpmr -campaign -inject immediate-free -parallel 8
//
// A campaign's declarative flags (-workload, -dpmr, -design, -diversity,
// -policy, -inject, -runs) assemble a harness.Spec; -dump-spec prints
// its canonical JSON and -spec runs a campaign from such a file instead
// of the flags, byte-identical to the flag-driven run:
//
//	dpmr-run -campaign -dump-spec -workload mcf -inject immediate-free > c.json
//	dpmr-run -campaign -spec c.json
//
// Campaigns shard across processes: each shard runs a contiguous slice
// of the canonical trial plan and writes a partial result, and -merge
// reassembles the summary exactly as a single-process run would compute
// it:
//
//	dpmr-run -workload mcf -campaign -inject immediate-free -shard 0/3 -out p0.json
//	dpmr-run -workload mcf -campaign -inject immediate-free -shard 1/3 -out p1.json
//	dpmr-run -workload mcf -campaign -inject immediate-free -shard 2/3 -out p2.json
//	dpmr-run -workload mcf -campaign -inject immediate-free -merge p0.json p1.json p2.json
//
// With -coord the sharding runs under a supervising coordinator: the
// plan is cut into -coord-shards slices, leased to a worker fleet
// (in-process goroutines, or spawned `dpmr-run -worker` processes with
// -coord-spawn), stragglers and crashes are retried, and the merged
// summary prints in one command. Every coord.Assignment carries the
// Spec, so a worker process's argv holds only execution policy:
//
//	dpmr-run -workload mcf -campaign -inject immediate-free -coord 4
//
// With -remote the campaign is submitted to a running dpmrd daemon over
// TCP or a Unix socket; the daemon's persistent fleet runs the shards,
// typed progress events stream back, and the shard payloads are merged
// locally — byte-identical to running the same campaign here:
//
//	dpmr-run -workload mcf -campaign -inject immediate-free -remote 127.0.0.1:9021
//
// Naming a concurrent workload (chash, cpipe, csteal) runs a concurrent
// campaign instead: -threads VMs share one address space under the
// deterministic interleaving scheduler, run rn explores schedule
// -sched-seed+rn, and every trial's memory trace passes through the
// offline consistency checker — the ConsistViol report column. There is
// no injection axis; the schedule is the fault model. All campaign
// machinery (-shard/-merge/-coord/-journal/-resume/-remote, -spec files)
// applies unchanged:
//
//	dpmr-run -workload chash -campaign -threads 3 -sched-seed 1 -parallel 8
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"

	"dpmr/internal/coord"
	coordnet "dpmr/internal/coord/net"
	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/extlib"
	"dpmr/internal/failpt"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/interp"
	"dpmr/internal/journal"
	"dpmr/internal/prof"
	"dpmr/internal/workloads"
)

func main() {
	// Interrupts cancel the context: a mid-campaign Ctrl-C stops
	// dispatch, drains in-flight trials, and exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	code := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpmr-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "mcf", "workload: art, bzip2, equake, mcf — or a concurrent group: chash, cpipe, csteal (with -campaign)")
		useDPMR    = fs.Bool("dpmr", false, "apply the DPMR transformation")
		inject     = fs.String("inject", "", "fault to inject: heap-array-resize or immediate-free")
		site       = fs.Int("site", 0, "allocation site id for the injection")
		seed       = fs.Int64("seed", 1, "VM seed (diversity randomness)")
		useDSA     = fs.Bool("dsa", false, "use the Chapter 5 DSA-refined pipeline")
		listSites  = fs.Bool("sites", false, "list injectable allocation sites and exit")
		showIR     = fs.Bool("dump-ir", false, "print the module IR instead of running")
		campaign   = fs.Bool("campaign", false, "run the full sites × runs injection campaign for this workload/variant")
		specFile   = fs.String("spec", "", "run the campaign described by this JSON spec file instead of the declarative flags (with -campaign)")
		dumpSpec   = fs.Bool("dump-spec", false, "print the campaign's canonical JSON spec and exit (the -spec file format; with -campaign)")
		parallel   = fs.Int("parallel", 1, "campaign worker goroutines (with -campaign)")
		runs       = fs.Int("runs", 2, "runs per injection site (with -campaign)")
		progress   = fs.Bool("progress", false, "report campaign progress and module-cache residency on stderr (with -campaign)")
		evict      = fs.Bool("evict", true, "release each module after its final trial (with -campaign)")
		shard      = fs.String("shard", "", "run campaign shard i/N and write a partial result (with -campaign)")
		outPath    = fs.String("out", "", "partial-result output file with -shard (default stdout)")
		merge      = fs.Bool("merge", false, "merge campaign partial-result files (the positional arguments; with -campaign)")
		journalDir = fs.String("journal", "", "journal completed trial spans to this `dir` and write a progressive report there (with -campaign)")
		resume     = fs.Bool("resume", false, "resume the campaign from an existing -journal directory, re-running only the missing trials")
		compile    = fs.Bool("compile", true, "execute as compiled module bytecode; -compile=false forces the tree-walking reference interpreter (output is byte-identical, only speed differs)")
		precomp    = fs.Int("precompile", 0, "background AOT workers building upcoming modules ahead of the execution frontier (0 = off; output is byte-identical, only speed differs; with -campaign)")
		opStats    = fs.String("opstats", "", "write the executed opcode-pair/triple histogram as JSON to `file` (\"-\" = stdout; single runs only, runs on the reference interpreter)")
		remote     = fs.String("remote", "", "submit the campaign to the dpmrd campaign service at this `addr` and merge the streamed shard results locally (with -campaign)")
		threads    = fs.Int("threads", 3, "VM count of a concurrent workload group (with a concurrent -campaign)")
		schedSeed  = fs.Int64("sched-seed", 1, "base interleaving-schedule seed; run rn explores schedule sched-seed+rn (with a concurrent -campaign)")
	)
	var vf harness.VariantFlags
	vf.Register(fs)
	var cf coord.CLIFlags
	cf.Register(fs, "campaign", "worker mode: serve shard assignments from stdin (JSON lines carrying the spec; normally spawned by a coordinator)")
	var pf prof.Flags
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "dpmr-run:", err)
		return 2
	}
	if sched, err := failpt.ArmFromEnv(); err != nil {
		return fail(fmt.Errorf("%s: %w", failpt.EnvVar, err))
	} else if sched != "" {
		fmt.Fprintf(stderr, "dpmr-run: failpoints armed from %s: %s\n", failpt.EnvVar, sched)
	}

	// A concurrent group name selects the scheduler-driven concurrent
	// campaign kind; everything downstream branches on the Spec's kind,
	// so a -spec file can select it too.
	w, err := workloads.ByName(*workload)
	var cw workloads.ConcurrentWorkload
	concurrent := false
	if err != nil {
		gw, gerr := workloads.ConcurrentByName(*workload)
		if gerr != nil {
			return fail(err)
		}
		cw, concurrent = gw, true
	}
	if concurrent && !*campaign {
		return fail(fmt.Errorf("concurrent workload %s runs under the interleaving scheduler; use -campaign (there is no single-run mode for scheduled groups)", cw.Name))
	}
	if concurrent && *listSites {
		return fail(fmt.Errorf("-sites applies to sequential workloads (concurrent campaigns take no injection)"))
	}

	if *listSites {
		for _, kind := range []faultinject.Kind{faultinject.HeapArrayResize, faultinject.ImmediateFree} {
			for _, s := range faultinject.Enumerate(w.Build(), kind) {
				fmt.Fprintf(stdout, "%s\n", s)
			}
		}
		return 0
	}

	var injectKind faultinject.Kind
	if *inject != "" {
		switch *inject {
		case "heap-array-resize":
			injectKind = faultinject.HeapArrayResize
		case "immediate-free":
			injectKind = faultinject.ImmediateFree
		default:
			return fail(fmt.Errorf("unknown injection %q", *inject))
		}
	}

	if !*campaign && !cf.Worker {
		if *shard != "" {
			return fail(fmt.Errorf("-shard requires -campaign"))
		}
		if *merge {
			return fail(fmt.Errorf("-merge requires -campaign"))
		}
		if cf.Enabled() {
			return fail(fmt.Errorf("-coord requires -campaign"))
		}
		if *specFile != "" || *dumpSpec {
			return fail(fmt.Errorf("-spec and -dump-spec require -campaign"))
		}
		if *journalDir != "" || *resume {
			return fail(fmt.Errorf("-journal and -resume require -campaign"))
		}
		if *remote != "" {
			return fail(fmt.Errorf("-remote requires -campaign (dpmrd runs campaign specs)"))
		}
		var concFlag error
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "threads" || f.Name == "sched-seed" {
				concFlag = fmt.Errorf("-%s requires a concurrent -campaign", f.Name)
			}
		})
		if concFlag != nil {
			return fail(concFlag)
		}
	}
	if *resume && *journalDir == "" {
		return fail(fmt.Errorf("-resume requires -journal (the directory holding the journal to continue)"))
	}
	if cf.Worker {
		// A worker serves whatever Spec each assignment carries; pinning
		// it to one campaign — or combining it with another mode — would
		// only invite drift.
		for flag, on := range map[string]bool{
			"-campaign": *campaign, "-merge": *merge, "-shard": *shard != "",
			"-coord": cf.Enabled(), "-spec": *specFile != "", "-journal": *journalDir != "",
			"-remote": *remote != "",
		} {
			if on {
				return fail(fmt.Errorf("%s and -worker are mutually exclusive (assignments carry the spec)", flag))
			}
		}
	}
	if *outPath != "" && *shard == "" {
		return fail(fmt.Errorf("-out requires -shard (merged and unsharded summaries go to stdout)"))
	}
	if err := cf.Validate(fs); err != nil {
		return fail(err)
	}
	// Validate the remaining usage constraints (parsing each input once)
	// before profiling starts, so a usage error cannot truncate an
	// existing profile file: -cpuprofile is only created once the
	// invocation is known-valid.
	var shardSpec harness.ShardSpec
	if *shard != "" {
		spec, err := harness.ParseShard(*shard)
		if err != nil {
			return fail(err)
		}
		shardSpec = spec
	}
	variant := harness.Stdapp()
	if *useDPMR {
		variant, err = vf.Variant()
		if err != nil {
			return fail(err)
		}
	}
	var spec harness.Spec
	if *campaign {
		// The campaign engine drives every site with per-run seeds; the
		// single-run-only flags would be silently ignored, so refuse them.
		if *useDSA {
			return fail(fmt.Errorf("-campaign does not support the -dsa pipeline"))
		}
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "seed" || f.Name == "site" || f.Name == "dump-ir" || f.Name == "opstats" {
				conflict = fmt.Errorf("-%s only applies to single runs, not -campaign", f.Name)
			}
			if !concurrent && *specFile == "" && (f.Name == "threads" || f.Name == "sched-seed") {
				conflict = fmt.Errorf("-%s only applies to concurrent campaigns", f.Name)
			}
		})
		if conflict != nil {
			return fail(conflict)
		}
		modes := 0
		for _, on := range []bool{*merge, *shard != "", cf.Enabled(), *remote != ""} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			return fail(fmt.Errorf("-merge, -shard, -coord, and -remote are mutually exclusive"))
		}
		if *journalDir != "" && (*merge || *shard != "") {
			return fail(fmt.Errorf("-journal is incompatible with -shard and -merge (the journal replaces manual shard files)"))
		}
		if *journalDir != "" && *remote != "" {
			return fail(fmt.Errorf("-journal is incompatible with -remote (a remote campaign journals on the daemon)"))
		}
		if *merge && len(fs.Args()) == 0 {
			return fail(fmt.Errorf("-merge needs the partial-result files as arguments"))
		}
		if *specFile == "" && injectKind == 0 && !concurrent {
			return fail(fmt.Errorf("-campaign requires -inject heap-array-resize or immediate-free (or a -spec file, or a concurrent workload)"))
		}
		// The declarative flags assemble the Spec; -spec replaces them
		// (mixing the two is refused inside ParseSpecFlags).
		var base harness.Spec
		if concurrent {
			if injectKind != 0 {
				return fail(fmt.Errorf("-inject does not apply to concurrent campaigns (the interleaving schedule is the fault axis)"))
			}
			base = harness.ConcurrentSpec([]string{cw.Name}, []harness.Variant{variant})
			base.Threads = *threads
			base.SchedSeed = *schedSeed
		} else {
			base = harness.CampaignSpec(injectKind, []workloads.Workload{w}, []harness.Variant{variant})
		}
		base.Runs = *runs
		spec, err = harness.ParseSpecFlags(fs, *specFile, base,
			"workload", "dpmr", "design", "diversity", "policy", "inject", "runs", "threads", "sched-seed")
		if err != nil {
			return fail(err)
		}
		switch spec.Kind {
		case harness.SpecCampaign, harness.SpecConcurrent:
		default:
			return fail(fmt.Errorf("-spec %s: dpmr-run runs campaign and concurrent specs, got kind %q (use dpmr-exp for experiments)", *specFile, spec.Kind))
		}
		concurrent = spec.Kind == harness.SpecConcurrent
		if *dumpSpec {
			if err := spec.Encode(stdout); err != nil {
				return execFail(stderr, err)
			}
			return 0
		}
	}
	profStop, perr := pf.Start()
	if perr != nil {
		// Profile-file I/O failure is a run failure (exit 1), not
		// command-line misuse.
		return execFail(stderr, perr)
	}
	defer func() {
		// Profile flushing failures can't change the exit code from a
		// defer; surface them loudly instead of dropping them.
		if err := profStop(); err != nil {
			fmt.Fprintln(stderr, "dpmr-run:", err)
		}
	}()

	if cf.Worker {
		// One Runner for the worker's lifetime: shards of the same plan
		// leased to this worker reuse its module and golden caches. The
		// spec arrives with each assignment — argv carries none of it.
		workerOpts := harness.Options{Parallel: *parallel, Evict: *evict, Reference: !*compile,
			Precompile: *precomp, Runner: harness.NewRunner()}
		err := coord.Serve(stdin, stdout, func(spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
			return harness.ShardPayload(ctx, spec, shard, workerOpts)
		})
		if err != nil {
			return execFail(stderr, err)
		}
		return 0
	}
	if *campaign {
		return runCampaign(ctx, campaignArgs{
			spec: spec, parallel: *parallel, precompile: *precomp,
			progress: *progress, evict: *evict, compile: *compile,
			shardSpec: shardSpec, sharded: *shard != "", outPath: *outPath,
			merge: *merge, mergeFiles: fs.Args(),
			journalDir: *journalDir, resume: *resume,
			remote:     *remote,
			coordFlags: cf,
			stdout:     stdout, stderr: stderr,
		})
	}

	m := w.Build()
	if *inject != "" {
		var found bool
		for _, s := range faultinject.Enumerate(m, injectKind) {
			if s.ID == *site {
				fm, err := faultinject.Apply(m, s)
				if err != nil {
					return fail(err)
				}
				m = fm
				found = true
				break
			}
		}
		if !found {
			return fail(fmt.Errorf("no injectable %s site %d (try dpmr-run -workload %s -sites)", injectKind, *site, *workload))
		}
	}

	externs := extlib.Base()
	if *useDPMR {
		cfg := dpmr.Config{Design: variant.Design, Diversity: variant.Diversity, Policy: variant.Policy}
		if *useDSA {
			var res *dsa.Result
			m, res, err = dsa.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "dsa:     %s; excluded sites %v\n", res.Stats(), res.ExcludedSites())
		} else {
			m, err = dpmr.Transform(m, cfg)
			if err != nil {
				return fail(err)
			}
		}
		externs = extlib.Wrapped(variant.Design)
	}

	if *showIR {
		fmt.Fprint(stdout, m.String())
		return 0
	}

	var prog *interp.Program
	if *compile && *opStats == "" {
		m.Freeze()
		// A compile failure is not fatal — the run simply proceeds on the
		// reference tree-walker with identical results, matching the
		// harness's fallback behavior.
		if p, err := interp.Compile(m); err == nil {
			prog = p
		}
	}
	var stats *interp.OpStats
	if *opStats != "" {
		// Opcode profiling instruments the reference tree-walker (results
		// stay bit-identical; only speed differs), so the compile is skipped
		// above — the VM would not bind it anyway.
		stats = interp.NewOpStats()
	}
	res := interp.Run(m, interp.Config{Externs: externs, Seed: *seed, StepLimit: 2_000_000_000, Prog: prog, OpStats: stats})
	if stats != nil {
		out := stdout
		var f *os.File
		if *opStats != "-" {
			f, err = os.Create(*opStats)
			if err != nil {
				return execFail(stderr, err)
			}
			out = f
		}
		if err := stats.WriteJSON(out); err != nil {
			if f != nil {
				f.Close()
			}
			return execFail(stderr, err)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				return execFail(stderr, err)
			}
		}
	}
	fmt.Fprintf(stdout, "exit:    %v (code %d) %s\n", res.Kind, res.Code, res.Reason)
	fmt.Fprintf(stdout, "steps:   %d\n", res.Steps)
	fmt.Fprintf(stdout, "cycles:  %d\n", res.Cycles)
	fmt.Fprintf(stdout, "heap:    %d allocs, %d frees, peak %d bytes\n",
		res.Mem.HeapAllocs, res.Mem.HeapFrees, res.Mem.HeapPeak)
	if res.FaultSeen {
		fmt.Fprintf(stdout, "fault:   first executed at cycle %d\n", res.FaultCycle)
	}
	fmt.Fprintf(stdout, "output:\n%s", res.Output)
	if res.Kind != interp.ExitNormal {
		return 1
	}
	return 0
}

// campaignArgs bundles the -campaign mode's resolved inputs: the
// declarative Spec plus the execution-policy flag values.
type campaignArgs struct {
	spec                   harness.Spec
	parallel               int
	precompile             int
	progress, evict, merge bool
	compile                bool
	sharded                bool
	shardSpec              harness.ShardSpec
	outPath                string
	mergeFiles             []string
	journalDir             string
	resume                 bool
	remote                 string
	coordFlags             coord.CLIFlags
	stdout, stderr         io.Writer
}

// concurrent reports whether the Spec runs the scheduler-driven
// concurrent kind — the arms below only diverge at merge/render time.
func (a campaignArgs) concurrent() bool { return a.spec.Kind == harness.SpecConcurrent }

// sessionOptions is the campaign's execution policy as Session options.
func (a campaignArgs) sessionOptions() []harness.Option {
	return []harness.Option{
		harness.WithParallel(a.parallel),
		harness.WithEviction(a.evict),
		harness.WithReference(!a.compile),
		harness.WithPrecompile(a.precompile),
	}
}

// mergeAndPrint reassembles shard partials with the Spec's kind-specific
// merge and prints the kind's summary block — the tail the -merge,
// -coord, and -remote arms share.
func mergeAndPrint(a campaignArgs, parts []*harness.PartialResult, how string) int {
	r := harness.NewRunner()
	r.Parallel = a.parallel
	if a.concurrent() {
		cr, err := r.MergeConcurrent(a.spec, parts)
		if err != nil {
			return execFail(a.stderr, err)
		}
		harness.RenderConcurrent(a.stdout, cr)
		return 0
	}
	cr, err := r.MergeCampaign(a.spec, parts)
	if err != nil {
		return execFail(a.stderr, err)
	}
	printCampaignSummary(a.stdout, how, cr)
	return 0
}

// usageFail reports command-line misuse (bad flags, names, or flag
// combinations): exit 2. Failures of the run itself — campaign
// execution, partial-file I/O, merge validation, a fleet that cannot
// finish — exit 1 via execFail, matching dpmr-exp and dpmrc.
func usageFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-run:", err)
	return 2
}

func execFail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dpmr-run:", err)
	return 1
}

// runSession starts a streaming Session for the campaign, renders its
// event stream to stderr when -progress is on (via the renderer the
// binaries share), and waits — the context-first path the sharded and
// unsharded arms share. A nonzero code means the failure was already
// reported.
func runSession(ctx context.Context, a campaignArgs, extra ...harness.Option) (harness.Result, int) {
	s, err := harness.Start(ctx, a.spec, append(a.sessionOptions(), extra...)...)
	if err != nil {
		return harness.Result{}, usageFail(a.stderr, err)
	}
	var sink func(harness.Event)
	if a.progress {
		sink = harness.RenderProgress(a.stderr, "campaign")
	}
	res, err := s.Drain(sink)
	if err != nil {
		return harness.Result{}, execFail(a.stderr, err)
	}
	return res, 0
}

// runCampaign executes the campaign Spec on the streaming Session API —
// whole, as one shard writing a partial result, merging shard partials,
// or scheduled on a coordinator fleet — and prints the coverage summary.
func runCampaign(ctx context.Context, a campaignArgs) int {
	runFail := func(err error) int { return execFail(a.stderr, err) }

	switch {
	case a.remote != "":
		return runRemoteCampaign(ctx, a)
	case a.journalDir != "" && a.coordFlags.Enabled():
		return runCoordinatedJournaled(ctx, a)
	case a.journalDir != "" && a.concurrent():
		return runJournaledConcurrent(ctx, a)
	case a.journalDir != "":
		return runJournaledCampaign(ctx, a)
	case a.coordFlags.Enabled():
		return runCoordinatedCampaign(ctx, a)
	case a.sharded:
		res, code := runSession(ctx, a, harness.WithShard(a.shardSpec))
		if code != 0 {
			return code
		}
		p := res.CampaignPartial
		if a.concurrent() {
			p = res.ConcurrentPartial
		}
		var err error
		out := a.stdout
		var f *os.File
		if a.outPath != "" && a.outPath != "-" {
			f, err = os.Create(a.outPath)
			if err != nil {
				return runFail(err)
			}
			out = f
		}
		if err := p.Encode(out); err != nil {
			if f != nil {
				f.Close()
			}
			return runFail(err)
		}
		// A close error (deferred flush, ENOSPC) would leave a truncated
		// partial behind a zero exit; surface it.
		if f != nil {
			if err := f.Close(); err != nil {
				return runFail(err)
			}
		}
		fmt.Fprintf(a.stderr, "shard %s: trials [%d, %d) of %d\n", a.shardSpec, p.Lo, p.Hi, p.Total)
		return 0
	case a.merge:
		parts := make([]*harness.PartialResult, len(a.mergeFiles))
		for i, name := range a.mergeFiles {
			f, err := os.Open(name)
			if err != nil {
				return runFail(err)
			}
			p, err := harness.DecodePartial(f)
			f.Close()
			if err != nil {
				return runFail(fmt.Errorf("%s: %w", name, err))
			}
			parts[i] = p
		}
		return mergeAndPrint(a, parts, fmt.Sprintf("%d shards", len(parts)))
	}

	res, code := runSession(ctx, a)
	if code != 0 {
		return code
	}
	if a.concurrent() {
		harness.RenderConcurrent(a.stdout, res.Concurrent)
	} else {
		printCampaignSummary(a.stdout, fmt.Sprintf("%d workers", a.parallel), res.Campaign)
	}
	fmt.Fprintf(a.stdout, "modules:    %d built, peak %d resident, %d evicted\n",
		res.Stats.Builds, res.Stats.Peak, res.Stats.Evicted)
	return 0
}

// journalRunner builds the Runner a journaled campaign executes on: the
// journal path drives the Runner directly (not a Session), so execution
// policy and the optional progress sink are set on it here.
func (a campaignArgs) journalRunner() *harness.Runner {
	r := harness.NewRunner()
	r.Parallel = a.parallel
	r.EvictModules = a.evict
	r.Compile = a.compile
	r.Precompile = a.precompile
	if a.progress {
		r.Events = harness.RenderProgress(a.stderr, "campaign")
	}
	return r
}

// writeJournaledSummary renders the journaled campaign summary: the
// standard coverage block, plus a trailing progress comment only while
// trials are still missing — so the final progressive report file is
// byte-identical to the summary an uninterrupted run prints on stdout.
func writeJournaledSummary(w io.Writer, cr *harness.CampaignResult, done, total int) {
	printCampaignSummary(w, "journaled", cr)
	if done < total {
		fmt.Fprintf(w, "# journal: %d of %d trials\n", done, total)
	}
}

// writeJournaledConcurrentSummary is writeJournaledSummary's concurrent
// analogue: the shared RenderConcurrent block plus the trailing progress
// comment while trials are still missing.
func writeJournaledConcurrentSummary(w io.Writer, cr *harness.ConcurrentResult, done, total int) {
	harness.RenderConcurrent(w, cr)
	if done < total {
		fmt.Fprintf(w, "# journal: %d of %d trials\n", done, total)
	}
}

// runJournaledConcurrent is runJournaledCampaign for the concurrent
// kind: same journal directory, progressive report, and resume behavior,
// with the concurrent merge and report block.
func runJournaledConcurrent(ctx context.Context, a campaignArgs) int {
	j, prior, err := harness.OpenJournal(a.journalDir, a.resume, a.spec)
	if err != nil {
		return usageFail(a.stderr, err)
	}
	defer j.Close()
	var snapErr error
	var total int
	cr, executed, err := a.journalRunner().RunConcurrentJournaled(ctx, a.spec, j, prior, harness.DefaultResumeSpans,
		func(snapshot *harness.ConcurrentResult, done, planTotal int) {
			total = planTotal
			if werr := journal.WriteReport(a.journalDir, func(w io.Writer) error {
				writeJournaledConcurrentSummary(w, snapshot, done, planTotal)
				return nil
			}); werr != nil && snapErr == nil {
				snapErr = werr
			}
		})
	if err != nil {
		return execFail(a.stderr, err)
	}
	if snapErr != nil {
		return execFail(a.stderr, snapErr)
	}
	if total == 0 {
		// A fully replayed journal runs no span, so the snapshot callback
		// never fired; the plan size still frames the replay message.
		if total, err = a.journalRunner().PlanTrials(a.spec); err != nil {
			return execFail(a.stderr, err)
		}
	}
	fmt.Fprintf(a.stderr, "journal: replayed %d trials, executed %d\n", total-executed, executed)
	warnDegraded(a.stderr, j)
	writeJournaledConcurrentSummary(a.stdout, cr, total, total)
	return 0
}

// runJournaledCampaign executes the campaign against a -journal
// directory: replayed coverage is skipped, each completed span is made
// durable before the next starts, the progressive report re-renders as
// spans land, and the final summary is byte-identical to a run that was
// never interrupted.
func runJournaledCampaign(ctx context.Context, a campaignArgs) int {
	j, prior, err := harness.OpenJournal(a.journalDir, a.resume, a.spec)
	if err != nil {
		return usageFail(a.stderr, err)
	}
	defer j.Close()
	var snapErr error
	var total int
	cr, executed, err := a.journalRunner().RunCampaignJournaled(ctx, a.spec, j, prior, harness.DefaultResumeSpans,
		func(snapshot *harness.CampaignResult, done, planTotal int) {
			total = planTotal
			if werr := journal.WriteReport(a.journalDir, func(w io.Writer) error {
				writeJournaledSummary(w, snapshot, done, planTotal)
				return nil
			}); werr != nil && snapErr == nil {
				snapErr = werr
			}
		})
	if err != nil {
		return execFail(a.stderr, err)
	}
	if snapErr != nil {
		return execFail(a.stderr, snapErr)
	}
	fmt.Fprintf(a.stderr, "journal: replayed %d trials, executed %d\n", total-executed, executed)
	warnDegraded(a.stderr, j)
	writeJournaledSummary(a.stdout, cr, total, total)
	return 0
}

// warnDegraded tells the operator when a journaled campaign finished on
// a journal that went lossy mid-run: the results in hand are complete
// and correct, but the journal cannot seed a resume — silence here would
// surface much later as a refused -resume with no context.
func warnDegraded(stderr io.Writer, j *journal.Journal) {
	if derr := j.Degraded(); derr != nil {
		fmt.Fprintf(stderr, "dpmr-run: WARNING: the campaign completed, but the journal degraded and cannot be resumed: %v\n", derr)
	}
}

// runCoordinatedJournaled resumes the campaign under the coordinator:
// the journal's gaps are cut into adaptively sized spans, leased to the
// fleet, journaled as each shard's first result lands (before the shard
// is marked done), and merged with the replayed coverage.
func runCoordinatedJournaled(ctx context.Context, a campaignArgs) int {
	j, prior, err := harness.OpenJournal(a.journalDir, a.resume, a.spec)
	if err != nil {
		return usageFail(a.stderr, err)
	}
	defer j.Close()
	r := a.journalRunner()
	resume := r.ResumeCampaign
	if a.concurrent() {
		resume = r.ResumeConcurrent
	}
	c, err := resume(a.spec, prior)
	if err != nil {
		return execFail(a.stderr, err)
	}
	// -coord-shards overrides the default span count; the cut itself
	// stays a pure function of (journal, Spec, span count) — never of the
	// worker count.
	spanCount := harness.DefaultResumeSpans
	if a.coordFlags.Shards > 0 {
		spanCount = a.coordFlags.Shards
	}
	parts := append([]*harness.PartialResult(nil), c.Parts...)
	writeSnap := func() error {
		done := 0
		for _, p := range parts {
			done += p.Hi - p.Lo
		}
		return journal.WriteReport(a.journalDir, func(w io.Writer) error {
			if a.concurrent() {
				writeJournaledConcurrentSummary(w, c.SnapshotConcurrent(parts), done, c.Total)
			} else {
				writeJournaledSummary(w, c.Snapshot(parts), done, c.Total)
			}
			return nil
		})
	}
	if err := writeSnap(); err != nil {
		return execFail(a.stderr, err)
	}
	executed := 0
	if spans := c.Spans(spanCount); len(spans) > 0 {
		cf := a.coordFlags
		workerOpts := harness.Options{Parallel: a.parallel, Evict: a.evict, Reference: !a.compile, Precompile: a.precompile}
		fleet := coord.FleetOptions{
			Spec:    a.spec,
			Workers: cf.Workers, Spans: spans, Lease: cf.Lease,
			Chaos: cf.Chaos, Stderr: a.stderr,
			Local: func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
				return harness.ShardPayload(ctx, spec, shard, workerOpts)
			},
			OnResult: func(_ int, payload []byte) error {
				p, err := harness.AppendCampaignPayload(j, payload)
				if err != nil {
					return err
				}
				executed += p.Hi - p.Lo
				parts = append(parts, p)
				return writeSnap()
			},
		}
		if cf.Spawn {
			fleet.SpawnArgv = []string{
				"-worker",
				"-parallel", strconv.Itoa(a.parallel),
				"-evict=" + strconv.FormatBool(a.evict),
				"-compile=" + strconv.FormatBool(a.compile),
				"-precompile", strconv.Itoa(a.precompile),
			}
		}
		if a.progress {
			fleet.Log = func(format string, args ...any) {
				fmt.Fprintf(a.stderr, "coord: "+format+"\n", args...)
			}
		}
		if _, err := coord.RunFleet(ctx, fleet); err != nil {
			return execFail(a.stderr, err)
		}
	}
	fmt.Fprintf(a.stderr, "journal: replayed %d trials, executed %d via %d workers\n",
		c.Done(), executed, a.coordFlags.Workers)
	warnDegraded(a.stderr, j)
	if a.concurrent() {
		cr, err := r.MergeConcurrent(a.spec, parts)
		if err != nil {
			return execFail(a.stderr, err)
		}
		writeJournaledConcurrentSummary(a.stdout, cr, c.Total, c.Total)
		return 0
	}
	cr, err := r.MergeCampaign(a.spec, parts)
	if err != nil {
		return execFail(a.stderr, err)
	}
	writeJournaledSummary(a.stdout, cr, c.Total, c.Total)
	return 0
}

// runCoordinatedCampaign schedules the campaign's shards on a worker
// fleet — in-process goroutines or spawned `dpmr-run -worker` processes —
// merges the streamed partials, and prints the same summary an unsharded
// run computes. The Spec rides in every assignment.
func runCoordinatedCampaign(ctx context.Context, a campaignArgs) int {
	runFail := func(err error) int { return execFail(a.stderr, err) }
	cf := a.coordFlags
	workerOpts := harness.Options{Parallel: a.parallel, Evict: a.evict, Reference: !a.compile, Precompile: a.precompile}
	fleet := coord.FleetOptions{
		Spec:    a.spec,
		Workers: cf.Workers, Shards: cf.Shards, Lease: cf.Lease,
		Chaos: cf.Chaos, Stderr: a.stderr,
		// In-process workers run concurrently, so each assignment gets a
		// fresh Runner (ShardPayload with no Options.Runner).
		Local: func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
			return harness.ShardPayload(ctx, spec, shard, workerOpts)
		},
	}
	if cf.Spawn {
		fleet.SpawnArgv = []string{
			"-worker",
			"-parallel", strconv.Itoa(a.parallel),
			"-evict=" + strconv.FormatBool(a.evict),
			"-compile=" + strconv.FormatBool(a.compile),
			"-precompile", strconv.Itoa(a.precompile),
		}
	}
	if a.progress {
		fleet.Log = func(format string, args ...any) {
			fmt.Fprintf(a.stderr, "coord: "+format+"\n", args...)
		}
	}
	payloads, err := coord.RunFleet(ctx, fleet)
	if err != nil {
		return runFail(err)
	}
	parts := make([]*harness.PartialResult, len(payloads))
	for i, payload := range payloads {
		p, err := harness.DecodePartial(bytes.NewReader(payload))
		if err != nil {
			return runFail(fmt.Errorf("shard %d: %w", i, err))
		}
		parts[i] = p
	}
	return mergeAndPrint(a, parts, fmt.Sprintf("%d shards via %d workers", len(payloads), cf.Workers))
}

// runRemoteCampaign submits the campaign Spec to a dpmrd daemon and
// merges the shard payloads it streams back. The daemon schedules the
// shards on its fleet (and journals them if it runs with -journal); the
// client-side merge recomputes the summary from the exact tiling, so
// the printed report is byte-identical to a local run no matter how the
// fleet carved it up.
func runRemoteCampaign(ctx context.Context, a campaignArgs) int {
	runFail := func(err error) int { return execFail(a.stderr, err) }
	var sink func(harness.Event)
	if a.progress {
		sink = harness.RenderProgress(a.stderr, "campaign@"+a.remote)
	}
	payloads, err := coordnet.Submit(ctx, a.remote, a.spec, sink)
	if err != nil {
		return runFail(err)
	}
	parts := make([]*harness.PartialResult, len(payloads))
	for i, payload := range payloads {
		p, err := harness.DecodePartial(bytes.NewReader(payload))
		if err != nil {
			return runFail(fmt.Errorf("shard %d: %w", i, err))
		}
		parts[i] = p
	}
	return mergeAndPrint(a, parts, fmt.Sprintf("%d shards via dpmrd", len(parts)))
}

// printCampaignSummary prints one coverage block per (workload, variant)
// cell of the result — for the flag-driven single-workload,
// single-variant campaign that is exactly one block, identical to what
// the pre-Spec engine printed.
func printCampaignSummary(w io.Writer, how string, cr *harness.CampaignResult) {
	for _, variant := range cr.Variants {
		for _, wname := range cr.Workloads {
			c := cr.Cell(variant, wname)
			fmt.Fprintf(w, "campaign: %s %s variant %s, %s\n", wname, cr.Kind, variant.Label(), how)
			fmt.Fprintf(w, "injections: %d successful\n", c.N)
			fmt.Fprintf(w, "coverage:   CO %.2f + NatDet %.2f + DpmrDet %.2f = %.2f\n",
				c.CO, c.NatDet, c.DpmrDet, c.Coverage())
			if c.MeanT2DMS > 0 {
				fmt.Fprintf(w, "latency:    mean time to detection %.3f ms\n", c.MeanT2DMS)
			}
		}
	}
}
