package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	coordnet "dpmr/internal/coord/net"
)

// noStdin stands in for an unused worker-protocol stream.
func noStdin() *strings.Reader { return strings.NewReader("") }

func runCLI(args []string, stdin *strings.Reader, stdout, stderr *bytes.Buffer) int {
	return run(context.Background(), args, stdin, stdout, stderr)
}

// TestRunFlagValidation is the table-driven flag/validation contract of
// the dpmr-run CLI: command-line misuse exits 2 and run failures exit 1
// (matching dpmr-exp and dpmrc), each with a diagnostic naming the
// problem.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"unknown workload", []string{"-workload", "nope"}, 2, "unknown workload"},
		{"unknown injection", []string{"-inject", "wild-write"}, 2, "unknown injection"},
		{"campaign without inject", []string{"-campaign"}, 2, "-campaign requires -inject"},
		{"campaign with dsa", []string{"-campaign", "-inject", "immediate-free", "-dsa"}, 2, "does not support"},
		{"campaign with seed", []string{"-campaign", "-inject", "immediate-free", "-seed", "3"}, 2, "only applies to single runs"},
		{"campaign with site", []string{"-campaign", "-inject", "immediate-free", "-site", "1"}, 2, "only applies to single runs"},
		{"shard without campaign", []string{"-shard", "0/2"}, 2, "-shard requires -campaign"},
		{"merge without campaign", []string{"-merge"}, 2, "-merge requires -campaign"},
		{"coord without campaign", []string{"-coord", "2"}, 2, "-coord requires -campaign"},
		{"worker with campaign", []string{"-worker", "-campaign", "-inject", "immediate-free"}, 2, "mutually exclusive"},
		{"worker with spec", []string{"-worker", "-spec", "/nonexistent/c.json"}, 2, "mutually exclusive"},
		{"spec without campaign", []string{"-spec", "/nonexistent/c.json"}, 2, "-spec and -dump-spec require -campaign"},
		{"dump-spec without campaign", []string{"-dump-spec"}, 2, "-spec and -dump-spec require -campaign"},
		{"spec missing file", []string{"-campaign", "-spec", "/nonexistent/c.json"}, 2, "no such file"},
		{"spec with inject flag", []string{"-campaign", "-spec", "/nonexistent/c.json", "-inject", "immediate-free"}, 2, "mutually exclusive"},
		{"out without shard", []string{"-campaign", "-inject", "immediate-free", "-out", "x.json"}, 2, "-out requires -shard"},
		{"merge with shard", []string{"-campaign", "-inject", "immediate-free", "-merge", "-shard", "0/2", "x.json"}, 2, "mutually exclusive"},
		{"coord with shard", []string{"-campaign", "-inject", "immediate-free", "-coord", "2", "-shard", "0/2"}, 2, "mutually exclusive"},
		{"coord with worker", []string{"-campaign", "-inject", "immediate-free", "-coord", "2", "-worker"}, 2, "mutually exclusive"},
		{"zero coord lease", []string{"-campaign", "-inject", "immediate-free", "-coord", "2", "-coord-lease", "0s"}, 2, "must be positive"},
		{"negative coord", []string{"-campaign", "-inject", "immediate-free", "-coord", "-2"}, 2, "at least 1 worker"},
		{"coord shards below workers", []string{"-campaign", "-inject", "immediate-free", "-coord", "4", "-coord-shards", "2"}, 2, "at least as fine"},
		{"coord-shards without coord", []string{"-campaign", "-inject", "immediate-free", "-coord-shards", "4"}, 2, "-coord-shards requires -coord"},
		{"coord-spawn without coord", []string{"-campaign", "-inject", "immediate-free", "-coord-spawn"}, 2, "-coord-spawn requires -coord"},
		{"coord-lease without coord", []string{"-campaign", "-inject", "immediate-free", "-coord-lease", "30s"}, 2, "-coord-lease requires -coord"},
		{"chaos without spawn", []string{"-campaign", "-inject", "immediate-free", "-coord", "2", "-coord-chaos", "1"}, 2, "-coord-chaos requires -coord-spawn"},
		{"merge without files", []string{"-campaign", "-inject", "immediate-free", "-merge"}, 2, "-merge needs"},
		{"bad shard", []string{"-campaign", "-inject", "immediate-free", "-shard", "9"}, 2, "want i/N"},
		{"shard out of range", []string{"-campaign", "-inject", "immediate-free", "-shard", "5/5"}, 2, "out of range"},
		{"remote without campaign", []string{"-remote", "127.0.0.1:9"}, 2, "-remote requires -campaign"},
		{"remote with coord", []string{"-campaign", "-inject", "immediate-free", "-remote", "127.0.0.1:9", "-coord", "2"}, 2, "mutually exclusive"},
		{"remote with shard", []string{"-campaign", "-inject", "immediate-free", "-remote", "127.0.0.1:9", "-shard", "0/2"}, 2, "mutually exclusive"},
		{"remote with merge", []string{"-campaign", "-inject", "immediate-free", "-remote", "127.0.0.1:9", "-merge", "x.json"}, 2, "mutually exclusive"},
		{"remote with worker", []string{"-worker", "-remote", "127.0.0.1:9"}, 2, "mutually exclusive"},
		{"remote with journal", []string{"-campaign", "-inject", "immediate-free", "-remote", "127.0.0.1:9", "-journal", "j"}, 2, "-journal is incompatible with -remote"},
		{"concurrent without campaign", []string{"-workload", "chash"}, 2, "use -campaign"},
		{"concurrent with sites", []string{"-workload", "cpipe", "-campaign", "-sites"}, 2, "applies to sequential workloads"},
		{"concurrent with inject", []string{"-workload", "chash", "-campaign", "-inject", "immediate-free"}, 2, "does not apply to concurrent campaigns"},
		{"concurrent with dsa", []string{"-workload", "chash", "-campaign", "-dsa"}, 2, "does not support"},
		{"threads without campaign", []string{"-workload", "mcf", "-threads", "4"}, 2, "-threads requires a concurrent -campaign"},
		{"sched-seed without campaign", []string{"-workload", "mcf", "-sched-seed", "4"}, 2, "-sched-seed requires a concurrent -campaign"},
		{"threads on injection campaign", []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-threads", "4"}, 2, "only applies to concurrent campaigns"},
		{"sched-seed on injection campaign", []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-sched-seed", "9"}, 2, "only applies to concurrent campaigns"},
		{"zero workers", []string{"-campaign", "-inject", "immediate-free", "-parallel", "0"}, 1, "at least 1 worker"},
		{"negative workers", []string{"-campaign", "-inject", "immediate-free", "-parallel", "-4"}, 1, "at least 1 worker"},
		{"bad cpuprofile path", []string{"-workload", "mcf", "-cpuprofile", "/no/such/dir/cpu.out"}, 1, "prof:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := runCLI(tc.args, noStdin(), &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantErr)
			}
		})
	}
}

// trimExecutionLocal drops the summary lines that legitimately differ
// between execution strategies (worker/shard counts, module statistics).
func trimExecutionLocal(s string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "modules:") || strings.HasPrefix(l, "campaign:") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// TestCampaignShardMergeEndToEnd shards one workload's campaign across
// two partial files and merges them; the summary must match a direct
// single-process campaign line for line (minus the execution-local
// module statistics).
func TestCampaignShardMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, stderr bytes.Buffer
	if code := runCLI(base, noStdin(), &direct, &stderr); code != 0 {
		t.Fatalf("direct campaign failed: %s", stderr.String())
	}
	files := []string{filepath.Join(dir, "p0.json"), filepath.Join(dir, "p1.json")}
	for i, f := range files {
		stderr.Reset()
		args := append(append([]string{}, base...), "-shard", string(rune('0'+i))+"/2", "-out", f)
		if code := runCLI(args, noStdin(), &bytes.Buffer{}, &stderr); code != 0 {
			t.Fatalf("shard %d failed: %s", i, stderr.String())
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	args := append(append([]string{}, base...), "-merge", files[1], files[0])
	if code := runCLI(args, noStdin(), &merged, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	if trimExecutionLocal(direct.String()) != trimExecutionLocal(merged.String()) {
		t.Errorf("merged summary differs from direct:\n--- direct ---\n%s\n--- merged ---\n%s",
			direct.String(), merged.String())
	}
	// A stale partial merged against different -runs is a different plan.
	stderr.Reset()
	args = []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "2", "-merge", files[0], files[1]}
	if code := runCLI(args, noStdin(), &bytes.Buffer{}, &stderr); code != 1 || !strings.Contains(stderr.String(), "fingerprint") {
		t.Errorf("foreign-plan merge exited %d, stderr %q", code, stderr.String())
	}
}

// TestCampaignCoordinatorEndToEnd runs the same campaign directly and
// under the in-process coordinator fleet; the coverage summary must
// match line for line (minus execution-local lines).
func TestCampaignCoordinatorEndToEnd(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, stderr bytes.Buffer
	if code := runCLI(base, noStdin(), &direct, &stderr); code != 0 {
		t.Fatalf("direct campaign failed: %s", stderr.String())
	}
	var coordinated bytes.Buffer
	stderr.Reset()
	args := append(append([]string{}, base...), "-coord", "2", "-coord-shards", "3")
	if code := runCLI(args, noStdin(), &coordinated, &stderr); code != 0 {
		t.Fatalf("coordinated campaign failed: %s", stderr.String())
	}
	if trimExecutionLocal(direct.String()) != trimExecutionLocal(coordinated.String()) {
		t.Errorf("coordinated summary differs from direct:\n--- direct ---\n%s\n--- coordinated ---\n%s",
			direct.String(), coordinated.String())
	}
	if !strings.Contains(coordinated.String(), "3 shards via 2 workers") {
		t.Errorf("coordinated summary does not name the fleet:\n%s", coordinated.String())
	}
}

// TestCampaignRemoteEndToEnd submits the campaign to an in-process
// dpmrd service over a loopback socket; the locally merged summary must
// match the direct run line for line (minus execution-local lines), and
// name the daemon as the execution strategy.
func TestCampaignRemoteEndToEnd(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, stderr bytes.Buffer
	if code := runCLI(base, noStdin(), &direct, &stderr); code != 0 {
		t.Fatalf("direct campaign failed: %s", stderr.String())
	}

	srv := coordnet.NewServer(coordnet.ServerConfig{LocalWorkers: 2})
	ln, err := coordnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var remote bytes.Buffer
	stderr.Reset()
	args := append(append([]string{}, base...), "-remote", ln.Addr().String())
	if code := runCLI(args, noStdin(), &remote, &stderr); code != 0 {
		t.Fatalf("remote campaign failed: %s", stderr.String())
	}
	if trimExecutionLocal(direct.String()) != trimExecutionLocal(remote.String()) {
		t.Errorf("remote summary differs from direct:\n--- direct ---\n%s\n--- remote ---\n%s",
			direct.String(), remote.String())
	}
	if !strings.Contains(remote.String(), "shards via dpmrd") {
		t.Errorf("remote summary does not name the daemon:\n%s", remote.String())
	}
}

// TestCampaignWorkerModeServes speaks the JSON-lines protocol to -worker
// mode directly: each assignment carries the campaign Spec (argv holds
// no experiment description), and the completions embed the campaign
// partials, module cache warm across them.
func TestCampaignWorkerModeServes(t *testing.T) {
	spec := `{"kind":"campaign","workloads":["art"],"variants":[{}],"inject":"immediate-free","runs":1}`
	stdin := strings.NewReader(
		`{"spec":` + spec + `,"shard":{"index":0,"count":2}}` + "\n" +
			`{"spec":` + spec + `,"shard":{"index":1,"count":2}}` + "\n")
	var stdout, stderr bytes.Buffer
	args := []string{"-worker"}
	if code := runCLI(args, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("worker mode exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if got := strings.Count(out, `"payload"`); got != 2 {
		t.Errorf("want 2 completions with payloads, got %d:\n%s", got, out)
	}
	if strings.Contains(out, `"error"`) {
		t.Errorf("worker reported an error:\n%s", out)
	}
}

// TestCompileFlagOutputIdentical asserts -compile=false (tree-walking
// reference) and the default compiled execution print byte-identical
// reports for a single run.
func TestCompileFlagOutputIdentical(t *testing.T) {
	runWith := func(extra ...string) string {
		var stdout, stderr bytes.Buffer
		args := append([]string{"-workload", "mcf", "-dpmr"}, extra...)
		if code := runCLI(args, noStdin(), &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d (stderr: %s)", args, code, stderr.String())
		}
		return stdout.String()
	}
	compiled := runWith()
	reference := runWith("-compile=false")
	if compiled != reference {
		t.Errorf("compiled and reference single-run outputs differ:\n%s\nvs\n%s", compiled, reference)
	}
}

// TestCampaignSpecFileEndToEnd: -dump-spec writes the campaign's
// canonical JSON, and -spec runs it back with no declarative flags —
// summary identical to the flag-driven campaign.
func TestCampaignSpecFileEndToEnd(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var specJSON, stderr bytes.Buffer
	if code := runCLI(append(append([]string{}, base...), "-dump-spec"), noStdin(), &specJSON, &stderr); code != 0 {
		t.Fatalf("-dump-spec failed: %s", stderr.String())
	}
	if !strings.Contains(specJSON.String(), `"kind":"campaign"`) {
		t.Fatalf("-dump-spec wrote no campaign spec: %s", specJSON.String())
	}
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := os.WriteFile(path, specJSON.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var flagDriven bytes.Buffer
	stderr.Reset()
	if code := runCLI(base, noStdin(), &flagDriven, &stderr); code != 0 {
		t.Fatalf("flag-driven campaign failed: %s", stderr.String())
	}
	var specDriven bytes.Buffer
	stderr.Reset()
	if code := runCLI([]string{"-campaign", "-spec", path}, noStdin(), &specDriven, &stderr); code != 0 {
		t.Fatalf("spec-driven campaign failed: %s", stderr.String())
	}
	if flagDriven.String() != specDriven.String() {
		t.Errorf("-spec campaign differs from flag-driven:\n--- flags ---\n%s\n--- spec ---\n%s",
			flagDriven.String(), specDriven.String())
	}
	// An experiment spec is dpmr-exp's business, named as such.
	expPath := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(expPath, []byte(`{"kind":"experiment","exp":"fig3.7"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := runCLI([]string{"-campaign", "-spec", expPath}, noStdin(), &bytes.Buffer{}, &stderr); code != 2 || !strings.Contains(stderr.String(), "dpmr-exp") {
		t.Errorf("experiment spec exited %d, stderr %q", code, stderr.String())
	}
}

// TestCampaignProgressGoesToStderr: -progress must never pollute the
// stdout summary or a shard partial written to stdout.
func TestCampaignProgressGoesToStderr(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var quiet, stderr bytes.Buffer
	if code := runCLI(base, noStdin(), &quiet, &stderr); code != 0 {
		t.Fatalf("campaign failed: %s", stderr.String())
	}
	var noisy, progressErr bytes.Buffer
	if code := runCLI(append(append([]string{}, base...), "-progress"), noStdin(), &noisy, &progressErr); code != 0 {
		t.Fatalf("-progress campaign failed: %s", progressErr.String())
	}
	if quiet.String() != noisy.String() {
		t.Errorf("-progress polluted stdout:\n--- without ---\n%s\n--- with ---\n%s", quiet.String(), noisy.String())
	}
	if !strings.Contains(progressErr.String(), "trials") {
		t.Errorf("-progress wrote nothing to stderr: %q", progressErr.String())
	}
	// A shard partial on stdout (-out -) stays pure JSON under -progress.
	var shardOut, shardErr bytes.Buffer
	args := append(append([]string{}, base...), "-shard", "0/2", "-out", "-", "-progress")
	if code := runCLI(args, noStdin(), &shardOut, &shardErr); code != 0 {
		t.Fatalf("shard -out - failed: %s", shardErr.String())
	}
	if !strings.HasPrefix(shardOut.String(), "{") || !strings.Contains(shardOut.String(), `"fingerprint"`) {
		t.Errorf("shard stdout is not a pure JSON partial: %q", shardOut.String())
	}
}

// TestConcurrentCampaignEndToEnd drives the scheduler-driven concurrent
// kind through the CLI's execution strategies: the direct summary names
// the scheduler configuration and the ConsistViol column, and sharded
// -merge, the in-process -coord fleet, and a -spec round trip all print
// the identical report.
func TestConcurrentCampaignEndToEnd(t *testing.T) {
	base := []string{"-workload", "chash", "-campaign", "-runs", "2", "-threads", "2", "-sched-seed", "7"}
	var direct, stderr bytes.Buffer
	if code := runCLI(base, noStdin(), &direct, &stderr); code != 0 {
		t.Fatalf("direct concurrent campaign failed: %s", stderr.String())
	}
	if !strings.Contains(direct.String(), "concurrent campaign: 2 threads, schedule seed 7") {
		t.Fatalf("summary does not name the scheduler configuration:\n%s", direct.String())
	}
	if !strings.Contains(direct.String(), "ConsistViol") {
		t.Fatalf("summary lacks the ConsistViol column:\n%s", direct.String())
	}

	dir := t.TempDir()
	files := []string{filepath.Join(dir, "p0.json"), filepath.Join(dir, "p1.json")}
	for i, f := range files {
		stderr.Reset()
		args := append(append([]string{}, base...), "-shard", string(rune('0'+i))+"/2", "-out", f)
		if code := runCLI(args, noStdin(), &bytes.Buffer{}, &stderr); code != 0 {
			t.Fatalf("shard %d failed: %s", i, stderr.String())
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	if code := runCLI(append(append([]string{}, base...), "-merge", files[1], files[0]), noStdin(), &merged, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	if trimExecutionLocal(direct.String()) != trimExecutionLocal(merged.String()) {
		t.Errorf("merged summary differs from direct:\n--- direct ---\n%s\n--- merged ---\n%s",
			direct.String(), merged.String())
	}

	var coordinated bytes.Buffer
	stderr.Reset()
	if code := runCLI(append(append([]string{}, base...), "-coord", "2"), noStdin(), &coordinated, &stderr); code != 0 {
		t.Fatalf("coordinated concurrent campaign failed: %s", stderr.String())
	}
	if trimExecutionLocal(direct.String()) != trimExecutionLocal(coordinated.String()) {
		t.Errorf("coordinated summary differs from direct:\n--- direct ---\n%s\n--- coordinated ---\n%s",
			direct.String(), coordinated.String())
	}

	var specJSON bytes.Buffer
	stderr.Reset()
	if code := runCLI(append(append([]string{}, base...), "-dump-spec"), noStdin(), &specJSON, &stderr); code != 0 {
		t.Fatalf("-dump-spec failed: %s", stderr.String())
	}
	if !strings.Contains(specJSON.String(), `"kind":"concurrent"`) {
		t.Fatalf("-dump-spec wrote no concurrent spec: %s", specJSON.String())
	}
	path := filepath.Join(dir, "concurrent.json")
	if err := os.WriteFile(path, specJSON.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var specDriven bytes.Buffer
	stderr.Reset()
	if code := runCLI([]string{"-campaign", "-spec", path}, noStdin(), &specDriven, &stderr); code != 0 {
		t.Fatalf("spec-driven concurrent campaign failed: %s", stderr.String())
	}
	if direct.String() != specDriven.String() {
		t.Errorf("-spec campaign differs from flag-driven:\n--- flags ---\n%s\n--- spec ---\n%s",
			direct.String(), specDriven.String())
	}
}

// TestConcurrentJournalEndToEnd: a journaled concurrent campaign prints
// the direct summary, leaves a report.txt byte-identical to its stdout,
// and resuming the completed journal executes nothing.
func TestConcurrentJournalEndToEnd(t *testing.T) {
	base := []string{"-workload", "cpipe", "-campaign", "-runs", "2", "-threads", "2"}
	var direct, stderr bytes.Buffer
	if code := runCLI(base, noStdin(), &direct, &stderr); code != 0 {
		t.Fatalf("direct concurrent campaign failed: %s", stderr.String())
	}

	dir := t.TempDir()
	var journaled, jerr bytes.Buffer
	if code := runCLI(append(base, "-journal", dir), noStdin(), &journaled, &jerr); code != 0 {
		t.Fatalf("journaled concurrent campaign failed: %s", jerr.String())
	}
	if trimExecutionLocal(journaled.String()) != trimExecutionLocal(direct.String()) {
		t.Errorf("journaled summary differs from direct:\n--- direct ---\n%s\n--- journaled ---\n%s",
			direct.String(), journaled.String())
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(report) != journaled.String() {
		t.Errorf("final report.txt differs from the journaled stdout:\n--- report.txt ---\n%s\n--- stdout ---\n%s",
			report, journaled.String())
	}

	var resumed, rerr bytes.Buffer
	if code := runCLI(append(base, "-journal", dir, "-resume"), noStdin(), &resumed, &rerr); code != 0 {
		t.Fatalf("resume of complete journal failed: %s", rerr.String())
	}
	if resumed.String() != journaled.String() {
		t.Errorf("resumed summary differs from the original journaled run:\n--- original ---\n%s\n--- resumed ---\n%s",
			journaled.String(), resumed.String())
	}
	if !strings.Contains(rerr.String(), "executed 0") {
		t.Errorf("resume of a complete journal re-executed trials: %q", rerr.String())
	}
}

// TestJournalFlagValidation is the -journal/-resume flag contract:
// every bad combination is a named exit-2 usage error, before any
// journal directory is touched.
func TestJournalFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"resume without journal", []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-resume"}, 2, "-resume requires -journal"},
		{"journal without campaign", []string{"-workload", "art", "-journal", "j"}, 2, "-journal and -resume require -campaign"},
		{"resume without campaign", []string{"-workload", "art", "-resume"}, 2, "-journal and -resume require -campaign"},
		{"journal with shard", []string{"-campaign", "-inject", "immediate-free", "-journal", "j", "-shard", "0/2"}, 2, "-journal is incompatible"},
		{"journal with merge", []string{"-campaign", "-inject", "immediate-free", "-journal", "j", "-merge"}, 2, "-journal is incompatible"},
		{"journal with worker", []string{"-worker", "-journal", "j"}, 2, "-journal and -worker are mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := runCLI(tc.args, noStdin(), &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q does not name the problem %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestJournalOpenRefusals: journal directory states that cannot be
// safely continued — an existing journal without -resume, nothing to
// resume, a changed spec, a corrupted file — are exit-2 refusals that
// name the condition rather than silently re-running or dropping trials.
func TestJournalOpenRefusals(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := runCLI(append(base, "-journal", dir), noStdin(), &stdout, &stderr); code != 0 {
		t.Fatalf("journaled campaign failed: %s", stderr.String())
	}

	data, err := os.ReadFile(filepath.Join(dir, "campaign.jnl"))
	if err != nil {
		t.Fatal(err)
	}
	corruptDir := t.TempDir()
	corrupt := append([]byte(nil), data...)
	corrupt[0] ^= 0x20
	if err := os.WriteFile(filepath.Join(corruptDir, "campaign.jnl"), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"existing journal without -resume", append(base, "-journal", dir), "pass -resume"},
		{"resume with nothing to resume", append(base, "-journal", t.TempDir(), "-resume"), "nothing to resume"},
		{"resume under a changed spec", []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "2", "-journal", dir, "-resume"}, "identical to resume"},
		{"resume of a corrupt journal", append(base, "-journal", corruptDir, "-resume"), "corrupt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := runCLI(tc.args, noStdin(), &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q does not name the condition %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestCampaignJournalEndToEnd: a journaled campaign prints the same
// summary as a direct run (modulo the execution line), leaves a
// report.txt byte-identical to its stdout, and resuming the completed
// journal replays everything, executes nothing, and prints the same
// summary again.
func TestCampaignJournalEndToEnd(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, directErr bytes.Buffer
	if code := runCLI(base, noStdin(), &direct, &directErr); code != 0 {
		t.Fatalf("direct campaign failed: %s", directErr.String())
	}

	dir := t.TempDir()
	var journaled, jerr bytes.Buffer
	if code := runCLI(append(base, "-journal", dir), noStdin(), &journaled, &jerr); code != 0 {
		t.Fatalf("journaled campaign failed: %s", jerr.String())
	}
	if trimExecutionLocal(journaled.String()) != trimExecutionLocal(direct.String()) {
		t.Errorf("journaled summary differs from direct:\n--- direct ---\n%s\n--- journaled ---\n%s",
			direct.String(), journaled.String())
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(report) != journaled.String() {
		t.Errorf("final report.txt differs from the journaled stdout:\n--- report.txt ---\n%s\n--- stdout ---\n%s",
			report, journaled.String())
	}

	var resumed, rerr bytes.Buffer
	if code := runCLI(append(base, "-journal", dir, "-resume"), noStdin(), &resumed, &rerr); code != 0 {
		t.Fatalf("resume of complete journal failed: %s", rerr.String())
	}
	if resumed.String() != journaled.String() {
		t.Errorf("resumed summary differs from the original journaled run:\n--- original ---\n%s\n--- resumed ---\n%s",
			journaled.String(), resumed.String())
	}
	if !strings.Contains(rerr.String(), "executed 0") {
		t.Errorf("resume of a complete journal re-executed trials: %q", rerr.String())
	}
}

// TestCampaignJournalCoordinatedEndToEnd: -journal under -coord leases
// the journal's gap spans to the fleet, journals each shard as it lands,
// and prints the direct campaign's summary; a follow-up plain -resume
// finds the journal complete.
func TestCampaignJournalCoordinatedEndToEnd(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, directErr bytes.Buffer
	if code := runCLI(base, noStdin(), &direct, &directErr); code != 0 {
		t.Fatalf("direct campaign failed: %s", directErr.String())
	}

	dir := t.TempDir()
	var coordOut, coordErr bytes.Buffer
	if code := runCLI(append(base, "-journal", dir, "-coord", "2"), noStdin(), &coordOut, &coordErr); code != 0 {
		t.Fatalf("coordinated journaled campaign failed: %s", coordErr.String())
	}
	if trimExecutionLocal(coordOut.String()) != trimExecutionLocal(direct.String()) {
		t.Errorf("coordinated journaled summary differs from direct:\n--- direct ---\n%s\n--- coordinated ---\n%s",
			direct.String(), coordOut.String())
	}
	if !strings.Contains(coordErr.String(), "via 2 workers") {
		t.Errorf("stderr does not report the fleet: %q", coordErr.String())
	}

	var resumed, rerr bytes.Buffer
	if code := runCLI(append(base, "-journal", dir, "-resume"), noStdin(), &resumed, &rerr); code != 0 {
		t.Fatalf("resume after coordinated run failed: %s", rerr.String())
	}
	if !strings.Contains(rerr.String(), "executed 0") {
		t.Errorf("coordinated run left gaps in the journal: %q", rerr.String())
	}
	if trimExecutionLocal(resumed.String()) != trimExecutionLocal(direct.String()) {
		t.Errorf("post-coordination resume summary differs from direct")
	}
}
