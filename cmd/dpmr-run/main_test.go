package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagValidation is the table-driven flag/validation contract of
// the dpmr-run CLI: bad flag combinations exit nonzero with a
// diagnostic, without running a workload or campaign.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown workload", []string{"-workload", "nope"}, "unknown workload"},
		{"unknown injection", []string{"-inject", "wild-write"}, "unknown injection"},
		{"campaign without inject", []string{"-campaign"}, "-campaign requires -inject"},
		{"campaign with dsa", []string{"-campaign", "-inject", "immediate-free", "-dsa"}, "does not support"},
		{"campaign with seed", []string{"-campaign", "-inject", "immediate-free", "-seed", "3"}, "only applies to single runs"},
		{"campaign with site", []string{"-campaign", "-inject", "immediate-free", "-site", "1"}, "only applies to single runs"},
		{"shard without campaign", []string{"-shard", "0/2"}, "-shard requires -campaign"},
		{"merge without campaign", []string{"-merge"}, "-merge requires -campaign"},
		{"out without shard", []string{"-campaign", "-inject", "immediate-free", "-out", "x.json"}, "-out requires -shard"},
		{"merge with shard", []string{"-campaign", "-inject", "immediate-free", "-merge", "-shard", "0/2", "x.json"}, "mutually exclusive"},
		{"merge without files", []string{"-campaign", "-inject", "immediate-free", "-merge"}, "-merge needs"},
		{"bad shard", []string{"-campaign", "-inject", "immediate-free", "-shard", "9"}, "want i/N"},
		{"shard out of range", []string{"-campaign", "-inject", "immediate-free", "-shard", "5/5"}, "out of range"},
		{"zero workers", []string{"-campaign", "-inject", "immediate-free", "-parallel", "0"}, "at least 1 worker"},
		{"negative workers", []string{"-campaign", "-inject", "immediate-free", "-parallel", "-4"}, "at least 1 worker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Errorf("run(%v) = %d, want 2 (stderr: %s)", tc.args, code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantErr)
			}
		})
	}
}

// TestCampaignShardMergeEndToEnd shards one workload's campaign across
// two partial files and merges them; the summary must match a direct
// single-process campaign line for line (minus the execution-local
// module statistics).
func TestCampaignShardMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, stderr bytes.Buffer
	if code := run(base, &direct, &stderr); code != 0 {
		t.Fatalf("direct campaign failed: %s", stderr.String())
	}
	files := []string{filepath.Join(dir, "p0.json"), filepath.Join(dir, "p1.json")}
	for i, f := range files {
		stderr.Reset()
		args := append(append([]string{}, base...), "-shard", string(rune('0'+i))+"/2", "-out", f)
		if code := run(args, &bytes.Buffer{}, &stderr); code != 0 {
			t.Fatalf("shard %d failed: %s", i, stderr.String())
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	args := append(append([]string{}, base...), "-merge", files[1], files[0])
	if code := run(args, &merged, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	trim := func(s string) string {
		var out []string
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "modules:") || strings.HasPrefix(l, "campaign:") {
				continue // execution-local lines (worker/shard counts differ)
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if trim(direct.String()) != trim(merged.String()) {
		t.Errorf("merged summary differs from direct:\n--- direct ---\n%s\n--- merged ---\n%s",
			direct.String(), merged.String())
	}
	// A stale partial merged against different -runs is a different plan.
	stderr.Reset()
	args = []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "2", "-merge", files[0], files[1]}
	if code := run(args, &bytes.Buffer{}, &stderr); code != 2 || !strings.Contains(stderr.String(), "fingerprint") {
		t.Errorf("foreign-plan merge exited %d, stderr %q", code, stderr.String())
	}
}
