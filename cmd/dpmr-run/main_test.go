package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// noStdin stands in for an unused worker-protocol stream.
func noStdin() *strings.Reader { return strings.NewReader("") }

// TestRunFlagValidation is the table-driven flag/validation contract of
// the dpmr-run CLI: command-line misuse exits 2 and run failures exit 1
// (matching dpmr-exp and dpmrc), each with a diagnostic naming the
// problem.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"unknown workload", []string{"-workload", "nope"}, 2, "unknown workload"},
		{"unknown injection", []string{"-inject", "wild-write"}, 2, "unknown injection"},
		{"campaign without inject", []string{"-campaign"}, 2, "-campaign requires -inject"},
		{"campaign with dsa", []string{"-campaign", "-inject", "immediate-free", "-dsa"}, 2, "does not support"},
		{"campaign with seed", []string{"-campaign", "-inject", "immediate-free", "-seed", "3"}, 2, "only applies to single runs"},
		{"campaign with site", []string{"-campaign", "-inject", "immediate-free", "-site", "1"}, 2, "only applies to single runs"},
		{"shard without campaign", []string{"-shard", "0/2"}, 2, "-shard requires -campaign"},
		{"merge without campaign", []string{"-merge"}, 2, "-merge requires -campaign"},
		{"coord without campaign", []string{"-coord", "2"}, 2, "-coord requires -campaign"},
		{"worker without campaign", []string{"-worker"}, 2, "-worker requires -campaign"},
		{"out without shard", []string{"-campaign", "-inject", "immediate-free", "-out", "x.json"}, 2, "-out requires -shard"},
		{"merge with shard", []string{"-campaign", "-inject", "immediate-free", "-merge", "-shard", "0/2", "x.json"}, 2, "mutually exclusive"},
		{"coord with shard", []string{"-campaign", "-inject", "immediate-free", "-coord", "2", "-shard", "0/2"}, 2, "mutually exclusive"},
		{"coord with worker", []string{"-campaign", "-inject", "immediate-free", "-coord", "2", "-worker"}, 2, "mutually exclusive"},
		{"negative coord", []string{"-campaign", "-inject", "immediate-free", "-coord", "-2"}, 2, "at least 1 worker"},
		{"coord shards below workers", []string{"-campaign", "-inject", "immediate-free", "-coord", "4", "-coord-shards", "2"}, 2, "at least as fine"},
		{"coord-shards without coord", []string{"-campaign", "-inject", "immediate-free", "-coord-shards", "4"}, 2, "-coord-shards requires -coord"},
		{"coord-spawn without coord", []string{"-campaign", "-inject", "immediate-free", "-coord-spawn"}, 2, "-coord-spawn requires -coord"},
		{"coord-lease without coord", []string{"-campaign", "-inject", "immediate-free", "-coord-lease", "30s"}, 2, "-coord-lease requires -coord"},
		{"chaos without spawn", []string{"-campaign", "-inject", "immediate-free", "-coord", "2", "-coord-chaos", "1"}, 2, "-coord-chaos requires -coord-spawn"},
		{"merge without files", []string{"-campaign", "-inject", "immediate-free", "-merge"}, 2, "-merge needs"},
		{"bad shard", []string{"-campaign", "-inject", "immediate-free", "-shard", "9"}, 2, "want i/N"},
		{"shard out of range", []string{"-campaign", "-inject", "immediate-free", "-shard", "5/5"}, 2, "out of range"},
		{"zero workers", []string{"-campaign", "-inject", "immediate-free", "-parallel", "0"}, 1, "at least 1 worker"},
		{"negative workers", []string{"-campaign", "-inject", "immediate-free", "-parallel", "-4"}, 1, "at least 1 worker"},
		{"bad cpuprofile path", []string{"-workload", "mcf", "-cpuprofile", "/no/such/dir/cpu.out"}, 1, "prof:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, noStdin(), &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantErr)
			}
		})
	}
}

// trimExecutionLocal drops the summary lines that legitimately differ
// between execution strategies (worker/shard counts, module statistics).
func trimExecutionLocal(s string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "modules:") || strings.HasPrefix(l, "campaign:") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// TestCampaignShardMergeEndToEnd shards one workload's campaign across
// two partial files and merges them; the summary must match a direct
// single-process campaign line for line (minus the execution-local
// module statistics).
func TestCampaignShardMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, stderr bytes.Buffer
	if code := run(base, noStdin(), &direct, &stderr); code != 0 {
		t.Fatalf("direct campaign failed: %s", stderr.String())
	}
	files := []string{filepath.Join(dir, "p0.json"), filepath.Join(dir, "p1.json")}
	for i, f := range files {
		stderr.Reset()
		args := append(append([]string{}, base...), "-shard", string(rune('0'+i))+"/2", "-out", f)
		if code := run(args, noStdin(), &bytes.Buffer{}, &stderr); code != 0 {
			t.Fatalf("shard %d failed: %s", i, stderr.String())
		}
	}
	var merged bytes.Buffer
	stderr.Reset()
	args := append(append([]string{}, base...), "-merge", files[1], files[0])
	if code := run(args, noStdin(), &merged, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	if trimExecutionLocal(direct.String()) != trimExecutionLocal(merged.String()) {
		t.Errorf("merged summary differs from direct:\n--- direct ---\n%s\n--- merged ---\n%s",
			direct.String(), merged.String())
	}
	// A stale partial merged against different -runs is a different plan.
	stderr.Reset()
	args = []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "2", "-merge", files[0], files[1]}
	if code := run(args, noStdin(), &bytes.Buffer{}, &stderr); code != 1 || !strings.Contains(stderr.String(), "fingerprint") {
		t.Errorf("foreign-plan merge exited %d, stderr %q", code, stderr.String())
	}
}

// TestCampaignCoordinatorEndToEnd runs the same campaign directly and
// under the in-process coordinator fleet; the coverage summary must
// match line for line (minus execution-local lines).
func TestCampaignCoordinatorEndToEnd(t *testing.T) {
	base := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1"}
	var direct, stderr bytes.Buffer
	if code := run(base, noStdin(), &direct, &stderr); code != 0 {
		t.Fatalf("direct campaign failed: %s", stderr.String())
	}
	var coordinated bytes.Buffer
	stderr.Reset()
	args := append(append([]string{}, base...), "-coord", "2", "-coord-shards", "3")
	if code := run(args, noStdin(), &coordinated, &stderr); code != 0 {
		t.Fatalf("coordinated campaign failed: %s", stderr.String())
	}
	if trimExecutionLocal(direct.String()) != trimExecutionLocal(coordinated.String()) {
		t.Errorf("coordinated summary differs from direct:\n--- direct ---\n%s\n--- coordinated ---\n%s",
			direct.String(), coordinated.String())
	}
	if !strings.Contains(coordinated.String(), "3 shards via 2 workers") {
		t.Errorf("coordinated summary does not name the fleet:\n%s", coordinated.String())
	}
}

// TestCampaignWorkerModeServes speaks the JSON-lines protocol to -worker
// mode directly: two assignments in, two completions with embedded
// campaign partials out, module cache warm across them.
func TestCampaignWorkerModeServes(t *testing.T) {
	stdin := strings.NewReader(
		`{"shard":{"index":0,"count":2}}` + "\n" + `{"shard":{"index":1,"count":2}}` + "\n")
	var stdout, stderr bytes.Buffer
	args := []string{"-workload", "art", "-campaign", "-inject", "immediate-free", "-runs", "1", "-worker"}
	if code := run(args, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("worker mode exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if got := strings.Count(out, `"payload"`); got != 2 {
		t.Errorf("want 2 completions with payloads, got %d:\n%s", got, out)
	}
	if strings.Contains(out, `"error"`) {
		t.Errorf("worker reported an error:\n%s", out)
	}
}

// TestCompileFlagOutputIdentical asserts -compile=false (tree-walking
// reference) and the default compiled execution print byte-identical
// reports for a single run.
func TestCompileFlagOutputIdentical(t *testing.T) {
	runWith := func(extra ...string) string {
		var stdout, stderr bytes.Buffer
		args := append([]string{"-workload", "mcf", "-dpmr"}, extra...)
		if code := run(args, noStdin(), &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) = %d (stderr: %s)", args, code, stderr.String())
		}
		return stdout.String()
	}
	compiled := runWith()
	reference := runWith("-compile=false")
	if compiled != reference {
		t.Errorf("compiled and reference single-run outputs differ:\n%s\nvs\n%s", compiled, reference)
	}
}
