module dpmr

go 1.21
