// Overflowhunt: run the paper's heap-array-resize fault-injection study
// on the bzip2 workload — the §1.1 motivating scenario of a production
// system with a deterministically activated allocation bug.
//
//	go run ./examples/overflowhunt
package main

import (
	"fmt"
	"log"

	"dpmr/internal/dpmr"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/workloads"
)

func main() {
	w, err := workloads.ByName("bzip2")
	if err != nil {
		log.Fatal(err)
	}
	sites := faultinject.Enumerate(w.Build(), faultinject.HeapArrayResize)
	fmt.Printf("bzip2 has %d heap array allocation sites where halving the request can manifest\n\n", len(sites))

	r := harness.NewRunner()
	variants := []harness.Variant{
		harness.Stdapp(),
		harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
	}
	fmt.Printf("%-28s %-34s %s\n", "variant", "per-site outcome", "meaning")
	for _, v := range variants {
		line := ""
		covered := 0
		for _, site := range sites {
			site := site
			o, err := r.RunOnce(w, v, &site, 0)
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case !o.SF:
				line += "."
			case o.CO:
				line += "C"
				covered++
			case o.DpmrDet:
				line += "D"
				covered++
			case o.NatDet:
				line += "n"
				covered++
			default:
				line += "!"
			}
		}
		fmt.Printf("%-28s %-34s %d/%d covered\n", v.Label(), line, covered, len(sites))
	}
	fmt.Println("\nlegend: C correct output, D DPMR detection, n natural detection (crash/self-check),")
	fmt.Println("        ! escaped (wrong output, undetected), . fault never executed")
}
