// Irtext: author a program as textual IR, parse it, harden it with the
// Chapter 5 DSA pipeline (it launders a pointer through an integer, which
// the base designs must reject), and run it — the full compiler-driver
// path a downstream user of the library would script.
//
//	go run ./examples/irtext
package main

import (
	"fmt"
	"log"

	"dpmr/internal/dpmr"
	"dpmr/internal/dsa"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

const program = `module textdemo
type %Cell = { i64; %Cell* }
func @main() i64 {
.entry:
  %a.0 = malloc %Cell ; site 0
  %f.1 = fieldaddr %a.0, 0
  %v.2 = const i64 40
  store %v.2, %f.1
  %raw.3 = ptrtoint %a.0
  %b.4 = inttoptr %raw.3 to %Cell*
  %g.5 = fieldaddr %b.4, 0
  %w.6 = load i64, %g.5
  %x.7 = malloc i64 ; site 1
  %two.8 = const i64 2
  %sum.9 = add %w.6, %two.8
  store %sum.9, %x.7
  %out.10 = load i64, %x.7
  output int %out.10
  free %x.7
  free %a.0
  ret %out.10
}
`

func main() {
	m, err := ir.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		log.Fatal(err)
	}

	// The base designs reject the int-to-pointer cast (§2.9/§4.4)...
	if _, err := dpmr.Transform(m, dpmr.Config{Design: dpmr.MDS}); err != nil {
		fmt.Println("plain DPMR rejects this program:")
		fmt.Println(" ", err)
	}

	// ...but the DSA pipeline analyzes it, excludes the laundered cell
	// from replication, and transforms the rest (§5.3).
	hardened, analysis, err := dsa.Transform(m, dpmr.Config{Design: dpmr.MDS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDSA: %s\n", analysis.Stats())
	fmt.Printf("excluded allocation sites: %v (site 1 stays replicated)\n", analysis.ExcludedSites())
	fmt.Println("\nDS graph:")
	fmt.Print(analysis.DumpGraph())

	res := interp.Run(hardened, interp.Config{Externs: extlib.Wrapped(dpmr.MDS)})
	fmt.Printf("\nrun: exit=%v code=%d output=%q\n", res.Kind, res.Code, res.Output)
}
