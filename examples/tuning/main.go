// Tuning: the §1.1 tunability pitch — sweep state comparison policies on
// one workload and print the overhead each buys, the way a deployment
// engineer would choose a point on the performance/dependability curve
// (e.g. more checking for a freshly deployed build, less for a trusted
// one).
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"dpmr/internal/dpmr"
	"dpmr/internal/harness"
	"dpmr/internal/workloads"
)

func main() {
	w, err := workloads.ByName("equake")
	if err != nil {
		log.Fatal(err)
	}
	r := harness.NewRunner()

	fmt.Println("equake under MDS + rearrange-heap, one row per comparison policy")
	fmt.Printf("%-16s %10s %14s\n", "policy", "overhead", "checks/loads")
	var variants []harness.Variant
	for _, pol := range dpmr.Policies() {
		variants = append(variants, harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, pol))
	}
	or, err := r.RunOverhead(context.Background(),
		harness.OverheadSpec([]workloads.Workload{w}, variants))
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants {
		fmt.Printf("%-16s %9.2fx %14s\n",
			v.PolicyLabel(), or.Ratio[v.Label()]["equake"], policyNote(v.PolicyLabel()))
	}
	fmt.Println("\nstatic checking removes work at compile time and gets cheaper than")
	fmt.Println("all-loads; temporal checking pays for its runtime gate and gets more")
	fmt.Println("expensive (§3.8) — coverage stays robust either way (Figs 3.11-3.14).")
}

func policyNote(name string) string {
	switch name {
	case "all loads":
		return "every load"
	case "temporal 1/8", "temporal 1/2", "temporal 7/8":
		return "runtime-gated"
	default:
		return "compile-time"
	}
}
