// Quickstart: build a small program in the IR, harden it with DPMR, and
// watch a silent buffer overflow get caught by replica comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

func main() {
	// 1. Build a program with a latent out-of-bounds write: x[5] lands
	//    beyond x's 3-element buffer.
	m := ir.NewModule("quickstart")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	x := b.MallocN(ir.I64, b.I64(3))
	y := b.MallocN(ir.I64, b.I64(3))
	b.Store(b.Index(x, b.I64(0)), b.I64(7))
	b.Store(b.Index(y, b.I64(0)), b.I64(5))
	b.Store(b.Index(x, b.I64(5)), b.I64(999)) // the bug
	v := b.Load(b.Index(x, b.I64(0)))
	w := b.Load(b.Index(y, b.I64(0)))
	b.Out(b.Add(v, w), ir.OutInt)
	b.Ret(b.I64(0))
	if err := ir.Verify(m); err != nil {
		log.Fatal(err)
	}

	// 2. The untransformed run is silently wrong: the overflow corrupts a
	//    neighbour and the program prints garbage with a clean exit.
	golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
	fmt.Printf("plain run:  exit=%v output=%q   <- silently corrupted (wanted 12)\n",
		golden.Kind, golden.Output)

	// 3. Apply DPMR (SDS design, default all-loads policy). Even with no
	//    explicit diversity, the interleaved app/replica layout makes the
	//    overflow corrupt unpaired objects (implicit diversity, §2.1).
	hardened, err := dpmr.Transform(m, dpmr.Config{Design: dpmr.SDS})
	if err != nil {
		log.Fatal(err)
	}
	res := interp.Run(hardened, interp.Config{Externs: extlib.Wrapped(dpmr.SDS)})
	fmt.Printf("DPMR run:   exit=%v (%s)\n", res.Kind, res.Reason)
	if res.Kind == interp.ExitDetect {
		fmt.Println("the memory error was detected before any corrupted output escaped")
	}

	// 4. The transformation is tunable: the same program under MDS with
	//    rearrange-heap and static 50% checking.
	tuned, err := dpmr.Transform(m, dpmr.Config{
		Design:    dpmr.MDS,
		Diversity: dpmr.RearrangeHeap{},
		Policy:    dpmr.StaticLoadChecking{Percent: 50},
	})
	if err != nil {
		log.Fatal(err)
	}
	res2 := interp.Run(tuned, interp.Config{Externs: extlib.Wrapped(dpmr.MDS)})
	fmt.Printf("tuned run:  exit=%v (%s)\n", res2.Kind, res2.Reason)
	if res2.Kind != interp.ExitDetect {
		fmt.Println("the cheaper configuration sampled away this check site — that is the")
		fmt.Println("performance/dependability trade-off DPMR exposes (§1.1, §2.7)")
	}
}
