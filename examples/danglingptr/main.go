// Danglingptr: show why the zero-before-free diversity transformation
// exists (§2.6) — a read-after-free that no amount of plain replication
// can see, because application and replica read the same stale bytes.
//
//	go run ./examples/danglingptr
package main

import (
	"fmt"
	"log"

	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
)

func buildUseAfterFree() *ir.Module {
	m := ir.NewModule("danglingptr")
	b := ir.NewBuilder(m)
	b.Function("main", ir.I64, nil)
	order := b.MallocN(ir.I64, b.I64(3)) // a pending "order record"
	b.Store(b.Index(order, b.I64(1)), b.I64(250))
	b.Free(order) // order cancelled...
	// ...but a stale pointer still reads the amount afterwards.
	amount := b.Load(b.Index(order, b.I64(1)))
	b.Out(amount, ir.OutInt)
	b.Ret(b.I64(0))
	return m
}

func main() {
	m := buildUseAfterFree()
	if err := ir.Verify(m); err != nil {
		log.Fatal(err)
	}
	golden := interp.Run(m, interp.Config{Externs: extlib.Base()})
	fmt.Printf("plain run:            exit=%v output=%q (stale data used as if valid)\n",
		golden.Kind, golden.Output)

	configs := []struct {
		name string
		div  dpmr.Diversity
	}{
		{"DPMR, no diversity", dpmr.NoDiversity{}},
		{"DPMR, zero-before-free", dpmr.ZeroBeforeFree{}},
		{"DPMR, rearrange-heap", dpmr.RearrangeHeap{}},
	}
	for _, cfg := range configs {
		xm, err := dpmr.Transform(m, dpmr.Config{Design: dpmr.SDS, Diversity: cfg.div})
		if err != nil {
			log.Fatal(err)
		}
		res := interp.Run(xm, interp.Config{Externs: extlib.Wrapped(dpmr.SDS), Seed: 3})
		verdict := "NOT DETECTED — replica read the same stale bytes"
		if res.Kind == interp.ExitDetect {
			verdict = "DETECTED — replica diverged from application memory"
		}
		fmt.Printf("%-22s exit=%v  %s\n", cfg.name+":", res.Kind, verdict)
	}
	fmt.Println("\nzero-before-free zeroes the replica at deallocation, so the dangling read")
	fmt.Println("returns 250 from application memory but 0 from the replica (§2.6).")
}
