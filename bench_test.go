// Package dpmrbench holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Chapters 3 and 4) as Go
// benchmarks: one Benchmark function per table/figure, reporting the
// figure's headline quantities as custom metrics (overhead ×golden,
// coverage fractions, detection latency in testbed milliseconds).
//
// The full renderings — the exact rows the paper plots — come from
// `go run ./cmd/dpmr-exp -exp <id>`; the benches here track the same
// numbers in a form `go test -bench` can watch over time.
package dpmrbench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpmr/internal/coord"
	coordnet "dpmr/internal/coord/net"
	"dpmr/internal/dpmr"
	"dpmr/internal/extlib"
	"dpmr/internal/faultinject"
	"dpmr/internal/harness"
	"dpmr/internal/interp"
	"dpmr/internal/ir"
	"dpmr/internal/journal"
	"dpmr/internal/mem"
	"dpmr/internal/sched"
	"dpmr/internal/workloads"
)

var benchMem = mem.Config{HeapBytes: 4 * 1024 * 1024, StackBytes: 256 * 1024, GlobalBytes: 64 * 1024}

// benchVariant interprets one prepared module b.N times (compiled, the
// default execution path) and reports the cycle clock and overhead ratio.
func benchVariant(b *testing.B, w workloads.Workload, v harness.Variant, golden uint64) {
	b.Helper()
	m := buildFor(b, w, v, nil)
	m.Freeze()
	prog, err := interp.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	externs := extlib.Base()
	if v.DPMR {
		externs = extlib.Wrapped(v.Design)
	}
	var cycles uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := interp.Run(m, interp.Config{Externs: externs, Mem: benchMem, Seed: 1, Prog: prog})
		if res.Kind != interp.ExitNormal {
			b.Fatalf("%s/%s: %v (%s)", w.Name, v.Label(), res.Kind, res.Reason)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/run")
	if golden > 0 {
		b.ReportMetric(float64(cycles)/float64(golden), "overhead-x")
	}
}

// BenchmarkInterp is the interpreter microbenchmark: one golden workload
// run per iteration, compiled bytecode vs the tree-walking reference.
// The compiled/reference ns/op ratio is the dispatch speedup the
// compile-once/execute-many pipeline buys; allocs/op tracks the frame
// arena (compiled runs should not allocate per call).
func BenchmarkInterp(b *testing.B) {
	for _, wname := range []string{"art", "mcf"} {
		w := mustWorkload(b, wname)
		m := w.Build()
		m.Freeze()
		prog, err := interp.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, prog *interp.Program) {
			b.Helper()
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res := interp.Run(m, interp.Config{Externs: extlib.Base(), Mem: benchMem, Seed: 1, Prog: prog})
				if res.Kind != interp.ExitNormal {
					b.Fatalf("%s: %v (%s)", wname, res.Kind, res.Reason)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles/run")
		}
		b.Run(wname+"/compiled", func(b *testing.B) { run(b, prog) })
		b.Run(wname+"/reference", func(b *testing.B) { run(b, nil) })
	}
}

func buildFor(b *testing.B, w workloads.Workload, v harness.Variant, inj *faultinject.Site) *ir.Module {
	b.Helper()
	m := w.Build()
	if inj != nil {
		fm, err := faultinject.Apply(m, *inj)
		if err != nil {
			b.Fatal(err)
		}
		m = fm
	}
	if !v.DPMR {
		return m
	}
	xm, err := dpmr.Transform(m, dpmr.Config{Design: v.Design, Diversity: v.Diversity, Policy: v.Policy, Seed: 12345})
	if err != nil {
		b.Fatal(err)
	}
	return xm
}

func goldenCycles(b *testing.B, w workloads.Workload) uint64 {
	b.Helper()
	res := interp.Run(w.Build(), interp.Config{Externs: extlib.Base(), Mem: benchMem})
	if res.Kind != interp.ExitNormal {
		b.Fatalf("golden %s: %v (%s)", w.Name, res.Kind, res.Reason)
	}
	return res.Cycles
}

func mustWorkload(b *testing.B, name string) workloads.Workload {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// overheadFigure benches the representative variants of an overhead
// figure across the pointer-light/pointer-heavy extremes.
func overheadFigure(b *testing.B, variants map[string]harness.Variant) {
	for _, wname := range []string{"art", "mcf"} {
		w := mustWorkload(b, wname)
		golden := goldenCycles(b, w)
		for label, v := range variants {
			v := v
			b.Run(wname+"/"+label, func(b *testing.B) {
				benchVariant(b, w, v, golden)
			})
		}
	}
}

// coverageFigure runs a quick campaign once, reports its coverage
// fractions, and times a representative injected run.
func coverageFigure(b *testing.B, design dpmr.Design, kind faultinject.Kind,
	variant harness.Variant, conditional bool) {
	r := harness.NewRunner()
	ws := workloads.All()[:2] // art + bzip2 keep bench time bounded
	spec := harness.CampaignSpec(kind, ws, []harness.Variant{harness.Stdapp(), variant})
	spec.Runs = 1
	spec.MaxSites = 3
	cr, err := r.RunCampaign(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	var cov, dpmrDet float64
	var n int
	if conditional {
		c := cr.Conditional[variant.Label()]
		cov, dpmrDet, n = c.Coverage(), c.DpmrDet, c.N
	} else {
		for _, wname := range cr.Workloads {
			c := cr.Cells[variant.Label()][wname]
			cov += c.Coverage()
			dpmrDet += c.DpmrDet
			n += c.N
		}
		cov /= float64(len(cr.Workloads))
		dpmrDet /= float64(len(cr.Workloads))
	}
	// Time one representative injected experiment per iteration.
	w := ws[0]
	sites := faultinject.Enumerate(w.Build(), kind)
	if len(sites) == 0 {
		b.Fatal("no sites")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunOnce(w, variant, &sites[0], 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cov, "coverage")
	b.ReportMetric(dpmrDet, "dpmr-det")
	b.ReportMetric(float64(n), "injections")
	_ = design
}

// latencyTable runs injected experiments and reports mean detection
// latency in testbed milliseconds.
func latencyTable(b *testing.B, design dpmr.Design, div dpmr.Diversity, pol dpmr.Policy) {
	r := harness.NewRunner()
	v := harness.NewVariant(design, div, pol)
	w := mustWorkload(b, "mcf")
	sites := faultinject.Enumerate(w.Build(), faultinject.ImmediateFree)
	var sumMS float64
	var det int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := r.RunOnce(w, v, &sites[i%len(sites)], 0)
		if err != nil {
			b.Fatal(err)
		}
		if o.Detected() && o.SF {
			sumMS += float64(o.T2DCycles) / harness.CyclesPerMS
			det++
		}
	}
	if det > 0 {
		b.ReportMetric(sumMS/float64(det), "t2d-ms")
	}
	b.ReportMetric(float64(det)/float64(b.N), "det-rate")
}

// ---------------------------------------------------------------------------
// Chapter 3 (SDS)

func BenchmarkFig3_06_ResizeCoverageDiversity(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}), false)
}

func BenchmarkFig3_07_ImmediateFreeCoverageDiversity(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}), false)
}

func BenchmarkFig3_08_ResizeConditionalCoverage(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}), true)
}

func BenchmarkFig3_09_ImmediateFreeConditionalCoverage(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}), true)
}

func BenchmarkFig3_10_OverheadDiversity(b *testing.B) {
	overheadFigure(b, map[string]harness.Variant{
		"no-diversity":    harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		"pad-malloc-1024": harness.NewVariant(dpmr.SDS, dpmr.PadMalloc{Pad: 1024}, dpmr.AllLoads{}),
	})
}

func BenchmarkTab3_03_DetectionLatencyDiversity(b *testing.B) {
	latencyTable(b, dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{})
}

func BenchmarkFig3_11_ResizeCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.TemporalHalf), false)
}

func BenchmarkFig3_12_ImmediateFreeCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 50}), false)
}

func BenchmarkFig3_13_ResizeConditionalCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 90}), true)
}

func BenchmarkFig3_14_ImmediateFreeConditionalCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.SDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.TemporalEighth), true)
}

func BenchmarkFig3_15_OverheadPolicies(b *testing.B) {
	overheadFigure(b, map[string]harness.Variant{
		"all-loads":    harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
		"temporal-1-2": harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.TemporalHalf),
		"static-10":    harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 10}),
	})
}

func BenchmarkFig3_16_TemporalPeriodicityAblation(b *testing.B) {
	overheadFigure(b, map[string]harness.Variant{
		"temporal-naive":    harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.TemporalHalf),
		"periodic-unrolled": harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.PeriodicLoadChecking{Period: 2}),
	})
}

func BenchmarkTab3_04_DetectionLatencyPolicies(b *testing.B) {
	latencyTable(b, dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 90})
}

// ---------------------------------------------------------------------------
// Chapter 4 (MDS)

func BenchmarkFig4_03_SideBySideDiversityOverhead(b *testing.B) {
	overheadFigure(b, map[string]harness.Variant{
		"sds": harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		"mds": harness.NewVariant(dpmr.MDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
	})
}

func BenchmarkFig4_04_SideBySidePolicyOverhead(b *testing.B) {
	overheadFigure(b, map[string]harness.Variant{
		"sds-static10": harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 10}),
		"mds-static10": harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 10}),
	})
}

func BenchmarkFig4_05_MDSOverheadDiversity(b *testing.B) {
	overheadFigure(b, map[string]harness.Variant{
		"no-diversity":   harness.NewVariant(dpmr.MDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		"rearrange-heap": harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
	})
}

func BenchmarkFig4_06_MDSOverheadPolicies(b *testing.B) {
	overheadFigure(b, map[string]harness.Variant{
		"all-loads": harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
		"static-10": harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 10}),
	})
}

func BenchmarkFig4_07_MDSResizeCoverageDiversity(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.MDS, dpmr.NoDiversity{}, dpmr.AllLoads{}), false)
}

func BenchmarkFig4_08_MDSImmediateFreeCoverageDiversity(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}), false)
}

func BenchmarkFig4_09_MDSResizeConditionalCoverage(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.MDS, dpmr.NoDiversity{}, dpmr.AllLoads{}), true)
}

func BenchmarkFig4_10_MDSImmediateFreeConditionalCoverage(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}), true)
}

func BenchmarkFig4_11_MDSResizeCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.TemporalHalf), false)
}

func BenchmarkFig4_12_MDSImmediateFreeCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 50}), false)
}

func BenchmarkFig4_13_MDSResizeConditionalCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.HeapArrayResize,
		harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 90}), true)
}

func BenchmarkFig4_14_MDSImmediateFreeConditionalCoveragePolicies(b *testing.B) {
	coverageFigure(b, dpmr.MDS, faultinject.ImmediateFree,
		harness.NewVariant(dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.TemporalEighth), true)
}

func BenchmarkTab4_05_MDSDetectionLatencyDiversity(b *testing.B) {
	latencyTable(b, dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{})
}

func BenchmarkTab4_06_MDSDetectionLatencyPolicies(b *testing.B) {
	latencyTable(b, dpmr.MDS, dpmr.RearrangeHeap{}, dpmr.StaticLoadChecking{Percent: 90})
}

// ---------------------------------------------------------------------------
// Campaign engine throughput

// BenchmarkCampaign measures the two-stage campaign engine end to end: a
// multi-site, multi-variant fault-injection campaign at increasing worker
// counts. The serial/parallel sub-benchmark ratio is the engine's
// speedup; every worker count produces an identical CampaignResult (the
// determinism tests in internal/harness assert byte-identical reports).
func BenchmarkCampaign(b *testing.B) {
	campaign := benchCampaignSpec()
	trials := planTrials(b, campaign)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("parallel%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh Runner per iteration so the module cache is
				// cold: the benchmark covers both engine stages.
				r := harness.NewRunner()
				r.Parallel = workers
				cr, err := r.RunCampaign(context.Background(), campaign)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.CachedModules()), "modules-built")
					var n int
					for _, wname := range cr.Workloads {
						n += cr.Cells[harness.Stdapp().Label()][wname].N
					}
					b.ReportMetric(float64(n), "stdapp-injections")
				}
			}
			reportTrialsPerSec(b, trials)
		})
	}

	// Reference ablation: the same campaign on the tree-walking reference
	// interpreter (Compile off). The parallelN/referenceN trials/sec ratio
	// is the speedup the compiled bytecode buys; results are byte-identical
	// (the differential test asserts it), only the clock differs.
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("reference%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := harness.NewRunner()
				r.Parallel = workers
				r.Compile = false
				if _, err := r.RunCampaign(context.Background(), campaign); err != nil {
					b.Fatal(err)
				}
			}
			reportTrialsPerSec(b, trials)
		})
	}

	// Sharded-merge: the same campaign as 3 shards (each on a fresh
	// Runner, as separate processes would run them) plus the
	// JSON round trip and the merge. The delta against parallel1 is the
	// coordination overhead sharding pays for horizontal scale.
	b.Run("shard3merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			const n = 3
			parts := make([]*harness.PartialResult, n)
			for s := 0; s < n; s++ {
				r := harness.NewRunner()
				r.EvictModules = true
				r.Shard = harness.ShardSpec{Index: s, Count: n}
				p, err := r.RunCampaignPartial(context.Background(), campaign)
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				if err := p.Encode(&buf); err != nil {
					b.Fatal(err)
				}
				if parts[s], err = harness.DecodePartial(&buf); err != nil {
					b.Fatal(err)
				}
			}
			r := harness.NewRunner()
			if _, err := r.MergeCampaign(campaign, parts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Pipelined AOT: background workers build and compile upcoming
	// modules ahead of the execution frontier, overlapping stage-1
	// module construction with stage-2 trials. The delta against
	// parallel2 isolates what the overlap buys on this core count
	// (stage 1 is ~18% of the serial campaign); results stay
	// byte-identical at any Precompile value.
	for _, workers := range []int{2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("precompile%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := harness.NewRunner()
				r.Parallel = workers
				r.Precompile = workers
				if _, err := r.RunCampaign(context.Background(), campaign); err != nil {
					b.Fatal(err)
				}
			}
			reportTrialsPerSec(b, trials)
		})
	}

	// Eviction ablation: serial campaign with last-trial eviction;
	// residency metrics quantify the bound eviction buys.
	b.Run("evict", func(b *testing.B) {
		var stats harness.CacheStats
		for i := 0; i < b.N; i++ {
			r := harness.NewRunner()
			r.EvictModules = true
			if _, err := r.RunCampaign(context.Background(), campaign); err != nil {
				b.Fatal(err)
			}
			stats = r.CacheStats()
		}
		b.ReportMetric(float64(stats.Peak), "peak-resident")
		b.ReportMetric(float64(stats.Builds), "modules-built")
	})

	// Journal ablation: the same serial campaign made crash-safe — every
	// completed span fsynced to the journal and the progressive report
	// atomically rewritten as it lands. The delta against parallel1 is
	// what durability costs.
	b.Run("journal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			j, prior, err := harness.OpenJournal(dir, false, campaign)
			if err != nil {
				b.Fatal(err)
			}
			_, _, err = harness.NewRunner().RunCampaignJournaled(context.Background(), campaign, j, prior,
				harness.DefaultResumeSpans, func(cr *harness.CampaignResult, done, total int) {
					if werr := journal.WriteReport(dir, func(w io.Writer) error {
						_, err := fmt.Fprintf(w, "%s: %d of %d trials\n", cr.Kind, done, total)
						return err
					}); werr != nil {
						b.Fatal(werr)
					}
				})
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
		}
		reportTrialsPerSec(b, trials)
	})

	// Resume overhead: replaying a complete journal — decode, checksum
	// verification, cross-checks, and the merge — with zero trials
	// re-executed. This is the fixed price a resumed campaign pays before
	// its first new trial.
	b.Run("journalreplay", func(b *testing.B) {
		dir := b.TempDir()
		j, prior, err := harness.OpenJournal(dir, false, campaign)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := harness.NewRunner().RunCampaignJournaled(context.Background(), campaign, j, prior,
			harness.DefaultResumeSpans, nil); err != nil {
			b.Fatal(err)
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, rp, err := harness.OpenJournal(dir, true, campaign)
			if err != nil {
				b.Fatal(err)
			}
			_, executed, err := harness.NewRunner().RunCampaignJournaled(context.Background(), campaign, j, rp,
				harness.DefaultResumeSpans, nil)
			if err != nil {
				b.Fatal(err)
			}
			if executed != 0 {
				b.Fatalf("replay of a complete journal executed %d trials", executed)
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchCampaignSpec is the benchmark campaign both BenchmarkCampaign
// and BenchmarkCoordinator run: art + bzip2, three variants, six sites,
// one run per tuple.
func benchCampaignSpec() harness.Spec {
	spec := harness.CampaignSpec(faultinject.ImmediateFree, workloads.All()[:2], []harness.Variant{
		harness.Stdapp(),
		harness.NewVariant(dpmr.SDS, dpmr.NoDiversity{}, dpmr.AllLoads{}),
		harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{}),
	})
	spec.Runs = 1
	spec.MaxSites = 6
	return spec
}

// planTrials sizes the benchmark campaign's canonical plan (for the
// trials/sec throughput metric).
func planTrials(b *testing.B, campaign harness.Spec) int {
	b.Helper()
	r := harness.NewRunner()
	trials, err := r.PlanTrials(campaign)
	if err != nil {
		b.Fatal(err)
	}
	return trials
}

func reportTrialsPerSec(b *testing.B, trials int) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(trials)*float64(b.N)/secs, "trials/sec")
	}
}

// shardWorker builds the in-process coordinator worker the benchmark
// fleets share: a fresh Runner per assignment (as concurrent fleet slots
// require), JSON round trip included — the exact bytes a process fleet
// would stream.
func shardWorker() coord.Func {
	return func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
		r := harness.NewRunner()
		r.EvictModules = true
		r.Shard = shard
		p, err := r.RunCampaignPartial(ctx, spec)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// BenchmarkCoordinator measures the shard coordinator end to end: the
// benchmark campaign cut into 2×workers shards, leased to an in-process
// fleet, streamed back as JSON partials, and merged. The delta against
// BenchmarkCampaign/parallelN is the coordination overhead a supervised
// fleet pays for crash/straggler tolerance; the straggler sub-benchmark
// injects a wedged first attempt and measures the lease-expiry retry
// path (its wall clock ≈ lease + normal run, not the straggler's hang).
func BenchmarkCoordinator(b *testing.B) {
	campaign := benchCampaignSpec()
	trials := planTrials(b, campaign)
	mergeAll := func(b *testing.B, payloads [][]byte) {
		b.Helper()
		parts := make([]*harness.PartialResult, len(payloads))
		for i, payload := range payloads {
			p, err := harness.DecodePartial(bytes.NewReader(payload))
			if err != nil {
				b.Fatal(err)
			}
			parts[i] = p
		}
		r := harness.NewRunner()
		if _, err := r.MergeCampaign(campaign, parts); err != nil {
			b.Fatal(err)
		}
	}
	worker := shardWorker()
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				co, err := coord.New(coord.Config{
					Spec:    campaign,
					Shards:  2 * workers,
					Workers: workers,
					Spawn:   func(int) (coord.Worker, error) { return worker, nil },
				})
				if err != nil {
					b.Fatal(err)
				}
				payloads, err := co.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				mergeAll(b, payloads)
			}
			reportTrialsPerSec(b, trials)
		})
	}

	b.Run("straggler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The first attempt overall wedges until shutdown; the lease
			// expires and the shard is speculatively re-leased.
			var wedged int32
			slow := coord.Func(func(ctx context.Context, spec harness.Spec, shard harness.ShardSpec) ([]byte, error) {
				if atomic.CompareAndSwapInt32(&wedged, 0, 1) {
					<-ctx.Done()
					return nil, ctx.Err()
				}
				return shardWorker()(ctx, spec, shard)
			})
			co, err := coord.New(coord.Config{
				Spec:    campaign,
				Shards:  4,
				Workers: 2,
				Lease:   50 * time.Millisecond,
				Spawn:   func(int) (coord.Worker, error) { return slow, nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			payloads, err := co.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			mergeAll(b, payloads)
		}
		reportTrialsPerSec(b, trials)
	})
}

// BenchmarkRemoteFleet measures the networked campaign service end to
// end: the benchmark campaign submitted to an in-process dpmrd Server
// over a loopback socket, run by 1/2/4 remote fleet workers (each a
// persistent Runner on its own connection, frames and JSON included),
// and merged client-side. The func sub-benchmarks run the identical
// schedule on in-process coord.Func workers — the remoteN/funcN
// trials/sec ratio is what the network transport costs.
func BenchmarkRemoteFleet(b *testing.B) {
	campaign := benchCampaignSpec()
	trials := planTrials(b, campaign)
	mergeAll := func(b *testing.B, payloads [][]byte) {
		b.Helper()
		parts := make([]*harness.PartialResult, len(payloads))
		for i, payload := range payloads {
			p, err := harness.DecodePartial(bytes.NewReader(payload))
			if err != nil {
				b.Fatal(err)
			}
			parts[i] = p
		}
		if _, err := harness.NewRunner().MergeCampaign(campaign, parts); err != nil {
			b.Fatal(err)
		}
	}

	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("remote%d", workers), func(b *testing.B) {
			srv := coordnet.NewServer(coordnet.ServerConfig{})
			ln, err := coordnet.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(ctx, ln) }()
			wctx, wcancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := coordnet.WorkerLoop(wctx, ln.Addr().String(), harness.Options{Evict: true}, nil); err != nil {
						b.Errorf("WorkerLoop: %v", err)
					}
				}()
			}
			for srv.FleetSize() < workers {
				time.Sleep(time.Millisecond)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				payloads, err := coordnet.Submit(context.Background(), ln.Addr().String(), campaign, nil)
				if err != nil {
					b.Fatal(err)
				}
				mergeAll(b, payloads)
			}
			b.StopTimer()
			wcancel()
			wg.Wait()
			cancel()
			if err := <-serveDone; err != nil {
				b.Fatal(err)
			}
			reportTrialsPerSec(b, trials)
		})
	}

	// The in-process baseline: the same 2×workers shard schedule on
	// coord.Func workers — no sockets, no frames, same merge.
	worker := shardWorker()
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("func%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				co, err := coord.New(coord.Config{
					Spec:    campaign,
					Shards:  2 * workers,
					Workers: workers,
					Spawn:   func(int) (coord.Worker, error) { return worker, nil },
				})
				if err != nil {
					b.Fatal(err)
				}
				payloads, err := co.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				mergeAll(b, payloads)
			}
			reportTrialsPerSec(b, trials)
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations called out in DESIGN.md

func BenchmarkAblationCacheModelOff(b *testing.B) {
	w := mustWorkload(b, "mcf")
	m := buildFor(b, w, harness.NewVariant(dpmr.SDS, dpmr.PadMalloc{Pad: 1024}, dpmr.AllLoads{}), nil)
	cfg := benchMem
	cfg.DisableCache = true
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := interp.Run(m, interp.Config{Externs: extlib.Wrapped(dpmr.SDS), Mem: cfg, Seed: 1})
		if res.Kind != interp.ExitNormal {
			b.Fatal(res.Reason)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/run")
}

func BenchmarkAblationWastefulShadowSizing(b *testing.B) {
	w := mustWorkload(b, "mcf")
	m, err := dpmr.Transform(w.Build(), dpmr.Config{Design: dpmr.SDS, WastefulShadowSizing: true})
	if err != nil {
		b.Fatal(err)
	}
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := interp.Run(m, interp.Config{Externs: extlib.Wrapped(dpmr.SDS), Mem: benchMem, Seed: 1})
		if res.Kind != interp.ExitNormal {
			b.Fatal(res.Reason)
		}
		peak = res.Mem.HeapPeak
	}
	b.ReportMetric(float64(peak), "heap-peak-bytes")
}

func BenchmarkAblationOptimizerPipeline(b *testing.B) {
	// Figure 3.4's optimize stage: DPMR variants with and without the
	// post-transform optimizer.
	w := mustWorkload(b, "mcf")
	golden := goldenCycles(b, w)
	for _, on := range []bool{false, true} {
		on := on
		name := "opt-off"
		if on {
			name = "opt-on"
		}
		b.Run(name, func(b *testing.B) {
			r := harness.NewRunner()
			r.Optimize = on
			v := harness.NewVariant(dpmr.SDS, dpmr.RearrangeHeap{}, dpmr.AllLoads{})
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := r.RunOnce(w, v, nil, 0)
				if err != nil {
					b.Fatal(err)
				}
				cycles = o.Res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles/run")
			b.ReportMetric(float64(cycles)/float64(golden), "overhead-x")
		})
	}
}

// BenchmarkScheduler measures the deterministic interleaving scheduler
// (internal/sched): one scheduled chash group per iteration. serial1 is
// the degenerate single-VM group (no handovers — the walker baseline);
// interleavedN adds N-VM cooperative scheduling with yields at every
// load/store/atomic; the traced variant layers per-replica trace
// recording on top, the full concurrent-campaign trial configuration.
// The serial/interleaved trials-per-second ratio is the scheduling cost,
// and interleaved/traced isolates the recorder's share.
func BenchmarkScheduler(b *testing.B) {
	w, err := workloads.ConcurrentByName("chash")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, threads int, traced bool) {
		m := w.Build(threads)
		m.Freeze()
		var switches uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := sched.Run(m, sched.Config{
				Threads:       threads,
				Seed:          1,
				TraceDisabled: !traced,
				VM:            interp.Config{Externs: extlib.Base(), Mem: benchMem},
			})
			c := res.Combined
			if c.Kind != interp.ExitNormal || c.Code != 0 {
				b.Fatalf("chash (%d threads): %v code %d (%s)", threads, c.Kind, c.Code, c.Reason)
			}
			switches = res.Switches
		}
		b.ReportMetric(float64(switches), "switches/run")
		reportTrialsPerSec(b, 1)
	}
	b.Run("serial1", func(b *testing.B) { run(b, 1, false) })
	b.Run("interleaved3", func(b *testing.B) { run(b, 3, false) })
	b.Run("interleaved3traced", func(b *testing.B) { run(b, 3, true) })
}
